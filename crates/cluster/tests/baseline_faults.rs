//! Fault schedules against the baseline protocols.
//!
//! The paper contrasts MDCC's storage-side recovery with 2PC's classic
//! weakness: "2PC requires all involved storage nodes to respond and is
//! not resilient to single node failures" — and above all, a dead
//! coordinator leaves every prepared participant locked with nobody
//! entitled to decide (the *blocking window*). These tests script the
//! same [`FaultPlan`] vocabulary MDCC runs use against the baselines:
//!
//! * a 2PC coordinator dies mid-prepare → its locks are orphaned and
//!   every later conflicting transaction aborts forever;
//! * the same coordinator death under MDCC → storage nodes resolve the
//!   dangling transaction themselves and commits keep flowing;
//! * a quorum-writes deployment shrugs off a storage-node crash (k of
//!   n acks suffice), demonstrating crash/restart schedules now drive
//!   baseline storage nodes too.

use std::sync::Arc;

use mdcc_cluster::{
    run_mdcc, run_qw, run_tpc, ClusterSpec, FaultEvent, FaultPlan, MdccMode, NetKind,
};
use mdcc_common::Row;
use mdcc_common::{DcId, ProtocolConfig, SimDuration, SimTime};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, MICRO_ITEMS, STOCK};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

/// One hot item, single-record transactions: any orphaned lock on it
/// blocks every writer in the system.
const HOT_ITEMS: u64 = 1;

/// The hot item with effectively infinite stock, so only locking — not
/// constraint exhaustion — decides outcomes.
fn hot_data() -> Vec<(mdcc_common::Key, Row)> {
    vec![(item_key(0), Row::new().with(STOCK, 50_000_000))]
}

fn hot_factory() -> impl FnMut(usize, DcId, &Arc<mdcc_common::StaticPlacement>) -> Box<dyn Workload>
{
    |_c, _dc, _p| {
        Box::new(MicroWorkload::new(MicroConfig {
            items: HOT_ITEMS,
            items_per_txn: 1,
            max_decrement: 1,
            ..MicroConfig::default()
        }))
    }
}

fn coordinator_death_spec(seed: u64, crash_at_ms: u64) -> ClusterSpec {
    ClusterSpec {
        seed,
        clients: 2,
        shards_per_dc: 1,
        net: NetKind::Uniform { rtt_ms: 100.0 },
        // Jitter desynchronizes the contending closed loops; in perfect
        // lockstep the no-wait locks livelock and nobody commits.
        jitter: 0.08,
        warmup: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(19),
        faults: FaultPlan::new().with(FaultEvent::CrashClient {
            at: SimDuration::from_millis(crash_at_ms),
            client: 0,
        }),
        // The benign/blocking pair below is a razor on *where in the
        // prepare cycle* the crash lands; the Nagle flush window would
        // shift every cycle and blunt it. End-of-event flushing keeps
        // this single-send-per-destination workload on legacy timing.
        protocol: ProtocolConfig {
            coalesce_window: SimDuration::ZERO,
            ..ProtocolConfig::default()
        },
        ..ClusterSpec::default()
    }
}

#[test]
fn twopc_coordinator_death_blocks_every_later_writer() {
    // Two coordinators contend on one hot item. Crash coordinator 0 at
    // two instants 100 ms apart:
    //
    // * **benign** (5.05 s): it dies holding no prepare lock — the
    //   surviving coordinator, freed of contention, commits every cycle;
    // * **mid-prepare** (5.15 s): it dies between PrepareVote-yes and
    //   Decide — the lock it took on the hot item is orphaned on every
    //   replica that voted yes, every later prepare votes no (no-wait
    //   locking), and the survivor starves until the end of time.
    //
    // The 100 ms difference between "everything recovers" and "nothing
    // ever commits again" *is* the paper's blocking-window argument.
    let data = hot_data();

    let benign = {
        let mut factory = hot_factory();
        run_tpc(
            &coordinator_death_spec(11, 5_050),
            catalog(),
            &data,
            &mut factory,
        )
    };
    let after_benign = benign.commits_between(SimTime::from_millis(5_500), SimTime::from_secs(20));
    assert!(
        after_benign > 50,
        "a cleanly-dead coordinator frees the item: survivor commits ({after_benign})"
    );

    let blocking = {
        let mut factory = hot_factory();
        run_tpc(
            &coordinator_death_spec(11, 5_150),
            catalog(),
            &data,
            &mut factory,
        )
    };
    let after_blocking =
        blocking.commits_between(SimTime::from_millis(5_600), SimTime::from_secs(20));
    assert_eq!(
        after_blocking, 0,
        "the orphaned prepare lock must block every later writer ({after_blocking} commits leaked)"
    );
}

#[test]
fn mdcc_survives_the_same_coordinator_death() {
    // Identical schedule, identical hot-spot workload, MDCC: the
    // surviving storage nodes detect the dangling transaction after the
    // dangling timeout and resolve it themselves (§3.2.3); the system
    // keeps committing.
    let spec = coordinator_death_spec(11, 5_150);
    let data = hot_data();
    let mut factory = hot_factory();
    let (report, _) = run_mdcc(&spec, catalog(), &data, &mut factory, MdccMode::Full);

    // Past the 5 s dangling timeout + resolution, commits must flow —
    // under the exact schedule that wedges 2PC forever.
    let after = report.commits_between(SimTime::from_secs(12), SimTime::from_secs(20));
    assert!(
        after > 0,
        "MDCC's dangling-transaction recovery must unblock the hot record"
    );
}

#[test]
fn quorum_writes_commit_through_a_storage_crash_restart() {
    // Crash the DC4 storage node for 5 s mid-run. QW-3 needs only 3 of
    // 5 acks, so writes keep committing throughout; the restart (for
    // baselines: a revive — they have no durability subsystem) brings
    // the node back.
    let spec = ClusterSpec {
        seed: 5,
        clients: 4, // DCs 0–3: reads stay clear of the crashed node.
        shards_per_dc: 1,
        net: NetKind::Uniform { rtt_ms: 100.0 },
        jitter: 0.0,
        warmup: SimDuration::from_secs(1),
        duration: SimDuration::from_secs(12),
        faults: FaultPlan::new().crash_restart(
            DcId(4),
            0,
            SimDuration::from_secs(4),
            SimDuration::from_secs(5),
        ),
        ..ClusterSpec::default()
    };
    let data = hot_data();
    let mut factory = hot_factory();
    let report = run_qw(&spec, catalog(), &data, &mut factory, 3);

    let during = report.commits_between(SimTime::from_secs(4), SimTime::from_secs(9));
    assert!(
        during > 0,
        "QW-3 must keep committing while one replica is down"
    );
    let after = report.commits_between(SimTime::from_secs(9), SimTime::from_secs(13));
    assert!(after > 0, "commits continue after the restart");
    assert!(
        report.net.bytes_sent > 0,
        "baselines ride the sized transport"
    );
}

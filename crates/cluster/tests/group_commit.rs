//! Group-commit WAL and storage-backend acceptance tests.
//!
//! The per-node commit buffer (`ProtocolConfig::group_commit`, on by
//! default) must be a pure durability-layer optimization: with fsync
//! latency zero it is inert — byte-identical to the per-append
//! discipline — and with real fsync latency it preserves every commit
//! guarantee while paying several-fold fewer fsyncs per committed
//! transaction. The storage backend knob (`ProtocolConfig::storage`)
//! must be invisible one layer further down: cluster runs under the
//! in-memory and log-structured engines are byte-identical, wire
//! accounting included.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, FaultPlan, MdccMode, Report};
use mdcc_common::{DcId, Key, Row, SimDuration, StorageKind};
use mdcc_core::TxnStats;
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, MICRO_ITEMS, STOCK};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

const ITEMS: u64 = 120;

/// A durable deployment: every storage-node state change WAL-appends,
/// so the fsync discipline is on the critical path of every commit.
fn wal_spec(seed: u64, fsync: SimDuration, group_commit: bool) -> ClusterSpec {
    let s = SimDuration::from_secs;
    let mut spec = ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: s(2),
        duration: s(12),
        drain: s(8),
        durability: true,
        wal_fsync: fsync,
        ..ClusterSpec::default()
    };
    spec.protocol.group_commit = group_commit;
    spec
}

fn run_wal(spec: &ClusterSpec) -> (Report, TxnStats) {
    // Effectively infinite stock: only the durability discipline (or
    // the storage backend) differs between runs, so commit outcomes are
    // comparable point to point — constraint exhaustion never decides.
    let data: Vec<(Key, Row)> = (0..ITEMS)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect();
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(spec, catalog(), &data, &mut factory, MdccMode::Full)
}

fn assert_healthy(label: &str, report: &Report) {
    let audit = report.audit.as_ref().expect("mdcc runs audit the cluster");
    assert_eq!(audit.pending_options, 0, "{label}: options left dangling");
    assert_eq!(audit.stuck_clients, 0, "{label}: clients left stuck");
    let min_stock = audit.min_of("stock").expect("stock audited");
    assert!(min_stock >= 0, "{label}: stock constraint violated");
}

/// The off-switch contract: at zero fsync latency the commit buffer is
/// inert, so toggling `group_commit` changes nothing — byte-identical
/// wire accounting and audits, the seed behavior exactly.
#[test]
fn group_commit_is_inert_at_zero_fsync_latency() {
    assert!(
        ClusterSpec::default().protocol.group_commit,
        "group commit is the default"
    );
    let (on, _) = run_wal(&wal_spec(91, SimDuration::ZERO, true));
    let (off, _) = run_wal(&wal_spec(91, SimDuration::ZERO, false));
    assert_healthy("gc-on", &on);
    assert_healthy("gc-off", &off);
    assert_eq!(on.net, off.net, "identical machines at fsync=0");
    assert_eq!(on.audit, off.audit, "byte-identical audits at fsync=0");
    assert_eq!(on.net.fsyncs, 0, "no explicit fsyncs at zero latency");
}

/// The acceptance headline: with real fsync latency both disciplines
/// converge healthy with zero aborts, and group commit pays severalfold
/// fewer fsyncs per committed transaction.
#[test]
fn group_commit_amortizes_fsyncs_without_changing_outcomes() {
    let fsync = SimDuration::from_millis(1);
    let (on, _) = run_wal(&wal_spec(92, fsync, true));
    let (off, _) = run_wal(&wal_spec(92, fsync, false));
    assert_healthy("gc-on", &on);
    assert_healthy("gc-off", &off);
    assert!(on.write_commits() > 100, "on-run barely committed");
    assert!(off.write_commits() > 100, "off-run barely committed");
    assert_eq!(on.write_aborts(), 0, "group commit introduced aborts");
    assert_eq!(off.write_aborts(), 0, "baseline unexpectedly aborted");

    // Per-append: every WAL append is its own fsync, so the rate per
    // commit is the workload's append fan-out (3-item transactions
    // across five replicas — far above the batched rate).
    let on_fpc = on.fsyncs_per_commit().expect("on-run committed");
    let off_fpc = off.fsyncs_per_commit().expect("off-run committed");
    eprintln!(
        "fsyncs/commit: group {on_fpc:.2} vs per-append {off_fpc:.2} ({:.1}x fewer)",
        off_fpc / on_fpc
    );
    assert!(
        on_fpc * 3.0 <= off_fpc,
        "group commit must amortize fsyncs at least 3x per commit: \
         {on_fpc:.2} vs {off_fpc:.2}"
    );
    // Outright counts are only loosely comparable: the group-commit run
    // also releases read replies early, so its clients cycle faster and
    // issue more transactions in the same wall of virtual time. The
    // per-commit ratio above is the amortization guarantee; outright the
    // batched run must still fsync strictly less.
    assert!(
        on.net.fsyncs < off.net.fsyncs,
        "batched run must fsync strictly less outright: {} vs {}",
        on.net.fsyncs,
        off.net.fsyncs
    );
}

/// The storage backend is wire-invisible: a run on the log-structured
/// engine (with a cache small enough to force evictions and transient
/// cold-record materialization throughout) is byte-identical to the
/// in-memory reference — same frames, same bytes, same audits.
#[test]
fn log_structured_backend_is_byte_identical_to_mem() {
    let fsync = SimDuration::from_millis(1);
    let mem_spec = wal_spec(93, fsync, true);
    assert_eq!(
        mem_spec.protocol.storage,
        StorageKind::Mem,
        "the in-memory map is the default backend"
    );
    let mut log_spec = wal_spec(93, fsync, true);
    log_spec.protocol.storage = StorageKind::LogStructured;
    // ITEMS records per node through a 32-record cache: every node
    // evicts and re-materializes constantly.
    log_spec.protocol.log_cache_records = 32;

    let (mem, _) = run_wal(&mem_spec);
    let (log, _) = run_wal(&log_spec);
    assert_healthy("mem", &mem);
    assert_healthy("log-structured", &log);
    assert_eq!(mem.net, log.net, "wire accounting is backend-independent");
    assert_eq!(mem.audit, log.audit, "audits are byte-identical");
    assert!(
        log.engine.evictions > 0,
        "the log-structured run never spilled its cache — the \
         equivalence was not exercised"
    );
}

/// A crash in the middle of the commit window: the unsynced WAL suffix
/// is lost (write-back durability), but acks are held until the
/// covering fsync, so nothing any client observed as committed can sit
/// in the lost suffix. The restarted node replays its durable prefix
/// and re-syncs to a byte-identical committed state.
#[test]
fn crash_mid_batch_loses_no_acked_commit() {
    let s = SimDuration::from_secs;
    let mut spec = wal_spec(94, SimDuration::from_millis(1), true);
    spec.drain = s(20);
    spec.faults = FaultPlan::new().crash_restart(DcId(1), 0, s(5), s(4));
    let (report, _) = run_wal(&spec);
    assert_eq!(report.recoveries.len(), 1, "the restart ran");
    assert_healthy("crash-mid-batch", &report);
    assert!(report.write_commits() > 100, "the cluster kept committing");
    let audit = report.audit.as_ref().expect("audited");
    let reference = audit.committed_digests[0];
    for r in &report.recoveries {
        assert_eq!(
            audit.committed_digests[r.node.0 as usize], reference,
            "restarted node diverged after replaying its durable prefix"
        );
    }
}

/// The commit window (deadline events, held acks, covering fsyncs)
/// stays deterministic: same seed, same spec ⇒ byte-identical audits.
#[test]
fn group_commit_runs_are_deterministic() {
    let spec = wal_spec(95, SimDuration::from_millis(1), true);
    let (a, _) = run_wal(&spec);
    let (b, _) = run_wal(&spec);
    assert_eq!(a.write_commits(), b.write_commits());
    assert_eq!(a.net, b.net, "wire accounting is reproducible");
    assert_eq!(a.audit, b.audit, "audits are byte-identical across reruns");
}

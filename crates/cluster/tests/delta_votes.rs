//! Delta-vote acceptance tests.
//!
//! Phase2b votes shipping the full cstruct to every interested
//! coordinator dominate full MDCC's wire cost under hot commutative
//! load (EXPERIMENTS.md §fig5). With `ProtocolConfig::delta_votes`
//! (the default) votes carry only the newly appended options plus a
//! cstruct digest, and divergence (message loss, missed epochs) is
//! healed by an explicit `CstructPull`/`CstructFull` read-repair round
//! trip. These tests check the wire-cost win, that forced divergence
//! actually exercises the repair protocol, and that the delta path
//! converges to the same kind of audited, constraint-respecting state
//! as the legacy full-cstruct path under loss and crash/restart.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, FaultPlan, MdccMode, Report};
use mdcc_common::{DcId, SimDuration};
use mdcc_core::TxnStats;
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

const ITEMS: u64 = 120;

/// A hot commutative deployment: commutative instances stay open until
/// the option cap, so each record's cstruct accumulates resolved
/// options and full votes get fat while the load stays civil enough
/// for clean end-of-run audits.
fn hot_spec(seed: u64) -> ClusterSpec {
    let s = SimDuration::from_secs;
    ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: s(2),
        duration: s(12),
        drain: s(8),
        ..ClusterSpec::default()
    }
}

fn run_hot(spec: &ClusterSpec) -> (Report, TxnStats) {
    let data = initial_items(ITEMS, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(spec, catalog(), &data, &mut factory, MdccMode::Full)
}

/// End-of-run health shared by every mode: nothing dangling, nobody
/// stuck, constraint intact. (Full replica digest equality is only
/// guaranteed when restart anti-entropy runs — the loss-free fault test
/// below asserts it for the restarted nodes, mirroring
/// `crash_recovery.rs`.)
fn assert_healthy(label: &str, report: &Report) {
    let audit = report.audit.as_ref().expect("mdcc runs audit the cluster");
    assert_eq!(audit.pending_options, 0, "{label}: options left dangling");
    assert_eq!(audit.stuck_clients, 0, "{label}: clients left stuck");
    let min_stock = audit.min_of("stock").expect("stock audited");
    assert!(min_stock >= 0, "{label}: stock constraint violated");
}

/// The headline: with delta votes on, the hot-commutative wire cost per
/// committed transaction drops several-fold versus the full-cstruct
/// path, while both runs converge and respect the constraint.
#[test]
fn delta_votes_slash_hot_commutative_wire_cost() {
    let delta_spec = hot_spec(77);
    assert!(
        delta_spec.protocol.delta_votes,
        "delta votes are the default"
    );
    let mut full_spec = hot_spec(77);
    full_spec.protocol.delta_votes = false;

    let (delta, _) = run_hot(&delta_spec);
    let (full, _) = run_hot(&full_spec);
    assert_healthy("delta", &delta);
    assert_healthy("full", &full);

    let delta_bpc = delta.bytes_per_commit().expect("delta run committed");
    let full_bpc = full.bytes_per_commit().expect("full run committed");
    eprintln!(
        "bytes/commit: delta {delta_bpc:.0} vs full {full_bpc:.0} ({:.1}x), \
         commits {} vs {}",
        full_bpc / delta_bpc,
        delta.write_commits(),
        full.write_commits(),
    );
    assert!(delta.write_commits() > 100, "delta run barely committed");
    assert!(full.write_commits() > 100, "full run barely committed");
    assert!(
        delta_bpc * 3.0 <= full_bpc,
        "delta votes must cut bytes/commit at least 3x on hot commutative \
         load: {delta_bpc:.0} vs {full_bpc:.0}"
    );
}

/// Forced divergence: uniform message loss drops delta votes, shadows
/// gap out, and the digest mismatch must drive `CstructPull` repair
/// round trips — visible both in the TM counters and in the `Repair`
/// traffic class of `Report::net` — with the cluster still converging.
#[test]
fn message_loss_forces_digest_mismatch_repairs() {
    let mut spec = hot_spec(91);
    spec.drop_prob = 0.03;
    let (report, stats) = run_hot(&spec);

    assert!(
        stats.repair_pulls > 0,
        "loss must force at least one shadow divergence repair"
    );
    let repair = report.net.repair;
    assert!(
        repair.msgs > 0 && repair.bytes > 0,
        "repair round trips must be accounted in their own traffic class"
    );
    // Pulls and full responses travel the repair class exclusively.
    assert!(
        repair.msgs >= stats.repair_pulls,
        "every pull (and its response) rides the repair class: {} msgs \
         for {} pulls",
        repair.msgs,
        stats.repair_pulls
    );
    assert_healthy("lossy delta", &report);
}

/// Equivalence under crash/restart: with delta votes on, a node that
/// crashes mid-run, replays its WAL (restoring the vote watermark and
/// cstruct epoch) and re-syncs still lands **byte-identical** to a
/// never-crashed reference replica — exactly like the full-cstruct
/// path does against the same fault schedule.
#[test]
fn delta_and_full_paths_reconverge_after_restarts() {
    let s = SimDuration::from_secs;
    let base = |delta_votes: bool| {
        let mut spec = hot_spec(58);
        spec.durability = true;
        spec.drain = s(25);
        spec.faults = FaultPlan::new()
            .crash_restart(DcId(1), 0, s(5), s(4))
            .crash_restart(DcId(3), 0, s(9), s(4));
        spec.protocol.delta_votes = delta_votes;
        spec
    };
    let (delta, _) = run_hot(&base(true));
    let (full, _) = run_hot(&base(false));
    for (label, report) in [("delta", &delta), ("full", &full)] {
        assert_eq!(report.recoveries.len(), 2, "{label}: both restarts ran");
        assert!(report.write_commits() > 50, "{label}: run barely committed");
        assert_healthy(label, report);
        let audit = report.audit.as_ref().expect("audited");
        let reference = audit.committed_digests[0];
        for r in &report.recoveries {
            assert_eq!(
                audit.committed_digests[r.node.0 as usize], reference,
                "{label}: restarted node {} diverged from the reference",
                r.node
            );
        }
    }
}

//! The crash–recovery acceptance drill.
//!
//! One storage node in *every* remote data center crashes mid-run (two
//! of them overlapping, which takes the fast quorum away entirely) and
//! restarts from its disk: checkpoint + WAL replay, then anti-entropy
//! sync against peers and dangling-transaction resolution. A client dies
//! too, orphaning whatever its transaction manager had in flight.
//!
//! The run must keep committing throughout, never violate `stock ≥ 0`,
//! resolve every dangling transaction, and leave each restarted node's
//! committed state **byte-equal** to a never-crashed reference replica.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, FaultEvent, FaultPlan, MdccMode};
use mdcc_common::{DcId, SimDuration, SimTime};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

const ITEMS: u64 = 800;

fn drill_spec(seed: u64) -> ClusterSpec {
    let s = SimDuration::from_secs;
    // Stagger crashes over every remote DC; DC1/DC2 overlap (only three
    // replicas alive: the fast quorum of four is unreachable and commits
    // must flow through classic masters), DC3/DC4 overlap likewise.
    let faults = FaultPlan::new()
        .crash_restart(DcId(1), 0, s(8), s(5))
        .crash_restart(DcId(2), 0, s(9), s(5))
        .crash_restart(DcId(3), 0, s(15), s(4))
        .crash_restart(DcId(4), 0, s(16), s(4))
        .with(FaultEvent::CrashClient {
            at: SimDuration::from_millis(10_100),
            client: 3,
        });
    ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: s(3),
        duration: s(22),
        // Quiesce: clients stop at 25 s; dangling sweeps, sync rounds and
        // in-flight resolutions finish well inside the drain.
        drain: s(15),
        durability: true,
        faults,
        ..ClusterSpec::default()
    }
}

fn run_drill_spec(spec: &ClusterSpec) -> (mdcc_cluster::Report, mdcc_core::TxnStats) {
    let data = initial_items(ITEMS, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(spec, catalog(), &data, &mut factory, MdccMode::Full)
}

fn run_drill(seed: u64) -> (mdcc_cluster::Report, mdcc_core::TxnStats) {
    run_drill_spec(&drill_spec(seed))
}

#[test]
fn nodes_crash_restart_and_replicas_reconverge_byte_for_byte() {
    let (report, stats) = run_drill(21);
    let audit = report.audit.as_ref().expect("mdcc runs audit the cluster");

    // --- The run keeps committing, including while nodes are down. ---
    let commits = report.write_commits();
    assert!(commits > 200, "got {commits} commits");
    assert!(
        stats.fast_commits > 0,
        "fast path worked before/after faults"
    );
    for (from_s, to_s) in [(8u64, 13u64), (15, 20)] {
        let during = report.commits_between(SimTime::from_secs(from_s), SimTime::from_secs(to_s));
        assert!(
            during > 0,
            "no commits during the {from_s}–{to_s}s crash window"
        );
    }

    // --- Four restarts happened and each replayed real durable state. ---
    assert_eq!(report.recoveries.len(), 4);
    for r in &report.recoveries {
        assert!(
            r.downtime() >= SimDuration::from_secs(4),
            "downtime {:?}",
            r.downtime()
        );
        assert!(
            r.info.snapshot_records > 0,
            "restart of {} materialized nothing from its checkpoint",
            r.node
        );
        assert!(
            r.info.wal_records_replayed > 0,
            "restart of {} replayed an empty WAL tail",
            r.node
        );
    }
    assert!(audit.checkpoints > 0, "periodic checkpoints ran");
    assert!(audit.wal_bytes_written > 0, "the WAL was exercised");

    // --- Every dangling transaction resolved. ---
    assert_eq!(audit.pending_options, 0, "options left dangling");
    assert_eq!(audit.stuck_clients, 0, "live clients left stuck");
    assert!(
        audit.dangling_resolved >= 1,
        "the dead client's orphaned transaction should have been \
         resolved by storage-node peers"
    );

    // --- The stock ≥ 0 constraint held on every replica. ---
    let min_stock = audit.min_of("stock").expect("stock attribute audited");
    assert!(min_stock >= 0, "constraint violated: min stock {min_stock}");

    // --- Byte-equality: restarted nodes match the never-crashed DC0
    //     replica exactly (shards_per_dc = 1 ⇒ node id = dc id). ---
    let reference = audit.committed_digests[0];
    for r in &report.recoveries {
        let digest = audit.committed_digests[r.node.0 as usize];
        assert_eq!(
            digest, reference,
            "restarted node {} diverged from the reference replica",
            r.node
        );
    }
}

/// The headline claim of the batched anti-entropy rework: against the
/// same crash schedule, merkle-style range-digest sync must ship
/// **strictly fewer sync bytes and strictly fewer sync messages** than
/// the legacy per-key `SyncKey` flood — while every restarted replica
/// still reconverges byte-for-byte with the never-crashed reference.
#[test]
fn batched_merkle_sync_ships_fewer_bytes_than_per_key_flood() {
    let batched_spec = drill_spec(21);
    assert!(
        batched_spec.protocol.sync_batching,
        "batched sync is the default"
    );
    let mut legacy_spec = drill_spec(21);
    legacy_spec.protocol.sync_batching = false;

    let (batched, _) = run_drill_spec(&batched_spec);
    let (legacy, _) = run_drill_spec(&legacy_spec);

    // Both runs must fully reconverge: every restarted node byte-equal
    // to the never-crashed DC0 replica.
    for (label, report) in [("batched", &batched), ("legacy", &legacy)] {
        let audit = report.audit.as_ref().expect("audited");
        assert_eq!(audit.pending_options, 0, "{label}: dangling options left");
        let reference = audit.committed_digests[0];
        for r in &report.recoveries {
            assert_eq!(
                audit.committed_digests[r.node.0 as usize], reference,
                "{label}: node {} diverged",
                r.node
            );
        }
    }

    // The per-key flood ships the whole store per sync round; digests
    // ship a u64 per range and full state only for divergent ranges.
    // Compare *payload* messages: envelope coalescing (on by default)
    // batches the flood's thousands of per-key messages into a handful
    // of giant frames, but the protocol-level message count — and the
    // bytes — still tell the anti-entropy story.
    let b = batched.net.sync;
    let l = legacy.net.sync;
    eprintln!(
        "sync traffic: batched {} msgs ({} frames) / {} bytes, \
         legacy {} msgs ({} frames) / {} bytes",
        b.payloads, b.msgs, b.bytes, l.payloads, l.msgs, l.bytes
    );
    assert!(
        b.bytes < l.bytes,
        "batched sync must ship fewer bytes: batched {} vs legacy {}",
        b.bytes,
        l.bytes
    );
    assert!(
        b.payloads < l.payloads,
        "batched sync must ship fewer messages: batched {} vs legacy {}",
        b.payloads,
        l.payloads
    );
    // And not marginally so: the flood re-ships ~800 records per round,
    // the digest protocol a handful of divergent ranges.
    assert!(
        (b.bytes as f64) < 0.5 * l.bytes as f64,
        "expected at least 2x byte savings, got {} vs {}",
        b.bytes,
        l.bytes
    );
}

/// The same drill on the log-structured storage backend, with a cache
/// small enough that every node evicts continuously and segment
/// compaction fires mid-protocol. Checkpoints, WAL replay and
/// anti-entropy sweeps all read records through the engine, so this is
/// the regression net for compaction interacting with snapshot `folded`
/// sets and option-log retention: if the copy-forward rewrite perturbed
/// any record's logical state, the restarted nodes' committed digests
/// would diverge from the never-crashed reference.
#[test]
fn log_structured_backend_survives_the_drill() {
    let mut spec = drill_spec(21);
    spec.protocol.storage = mdcc_common::StorageKind::LogStructured;
    // 800 items through a 48-record cache: constant eviction, and the
    // superseding rewrites accumulate dead bytes past the compaction
    // threshold during the run.
    spec.protocol.log_cache_records = 48;
    let (report, _) = run_drill_spec(&spec);
    let audit = report.audit.as_ref().expect("audited");

    assert!(report.write_commits() > 200, "the cluster kept committing");
    assert_eq!(report.recoveries.len(), 4, "all four restarts ran");
    assert_eq!(audit.pending_options, 0, "options left dangling");
    assert_eq!(audit.stuck_clients, 0, "clients left stuck");
    let min_stock = audit.min_of("stock").expect("stock audited");
    assert!(min_stock >= 0, "stock constraint violated");

    let reference = audit.committed_digests[0];
    for r in &report.recoveries {
        assert_eq!(
            audit.committed_digests[r.node.0 as usize], reference,
            "restarted node {} diverged under the log-structured engine",
            r.node
        );
    }

    // The run must actually have exercised the engine's moving parts.
    eprintln!("engine counters: {:?}", report.engine);
    assert!(report.engine.evictions > 0, "the cache never spilled");
    assert!(
        report.engine.compactions > 0,
        "no segment compaction ran — shrink the cache or lengthen the run"
    );
    assert!(report.engine.live_bytes > 0, "segments hold live state");
}

#[test]
fn report_accounts_bytes_by_traffic_class() {
    let (report, _) = run_drill(21);
    let net = report.net;
    assert!(net.bytes_sent > 0, "bytes were accounted");
    assert_eq!(
        net.bytes_sent,
        net.protocol.bytes + net.read.bytes + net.sync.bytes + net.repair.bytes,
        "classes partition the total"
    );
    assert!(net.protocol.bytes > 0, "commit-protocol traffic present");
    assert!(net.read.bytes > 0, "read traffic present");
    assert!(net.sync.bytes > 0, "restart sync traffic present");
    assert!(
        report.bytes_per_commit().unwrap() > 0.0,
        "per-commit wire cost derivable"
    );
}

#[test]
fn drill_is_deterministic() {
    let (a, _) = run_drill(33);
    let (b, _) = run_drill(33);
    assert_eq!(a.write_commits(), b.write_commits());
    assert_eq!(a.audit, b.audit, "audits are byte-identical across reruns");
}

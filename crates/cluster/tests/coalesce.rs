//! Envelope-coalescing acceptance tests.
//!
//! The transport's destination-coalesced outbox (`ProtocolConfig::
//! coalesce`, on by default) must be a pure wire-layer optimization:
//! identical commit outcomes with strictly fewer wire frames — every
//! frame pays the per-message service floor, so frames/commit is the
//! queueing cost the paper's throughput ceilings hinge on. With the
//! knob off the transport reverts to one frame per message, the PR 3
//! baseline (`msgs_sent == payload_msgs`, byte-identical accounting).

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, FaultPlan, MdccMode, Report};
use mdcc_common::{DcId, Key, Row, SimDuration};
use mdcc_core::TxnStats;
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{item_key, MicroConfig, MicroWorkload, MICRO_ITEMS, STOCK};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

const ITEMS: u64 = 120;

/// The fan-out-heavy deployment: one shard per DC concentrates every
/// record of a transaction on the same five acceptors, and commutative
/// contention keeps instances full of interested coordinators — the
/// load the envelope outbox exists for.
fn hot_spec(seed: u64, coalesce: bool) -> ClusterSpec {
    let s = SimDuration::from_secs;
    let mut spec = ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: s(2),
        duration: s(12),
        drain: s(8),
        ..ClusterSpec::default()
    };
    spec.protocol.coalesce = coalesce;
    spec
}

fn run_hot(spec: &ClusterSpec) -> (Report, TxnStats) {
    // Effectively infinite stock: only the transport differs between
    // runs, so "identical commit outcomes" is exact — every attempted
    // transaction commits in both (constraint exhaustion never decides).
    let data: Vec<(Key, Row)> = (0..ITEMS)
        .map(|i| (item_key(i), Row::new().with(STOCK, 1_000_000)))
        .collect();
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(spec, catalog(), &data, &mut factory, MdccMode::Full)
}

fn assert_healthy(label: &str, report: &Report) {
    let audit = report.audit.as_ref().expect("mdcc runs audit the cluster");
    assert_eq!(audit.pending_options, 0, "{label}: options left dangling");
    assert_eq!(audit.stuck_clients, 0, "{label}: clients left stuck");
    let min_stock = audit.min_of("stock").expect("stock audited");
    assert!(min_stock >= 0, "{label}: stock constraint violated");
}

/// The acceptance headline: coalescing on versus off produces identical
/// commit outcomes — every transaction either run attempts commits, the
/// cluster converges healthy — while the on-run ships strictly fewer
/// wire frames (and several-fold fewer protocol frames per commit).
#[test]
fn coalescing_preserves_outcomes_with_strictly_fewer_frames() {
    let on_spec = hot_spec(77, true);
    assert!(
        ClusterSpec::default().protocol.coalesce,
        "coalescing is the default"
    );
    let off_spec = hot_spec(77, false);

    let (on, _) = run_hot(&on_spec);
    let (off, _) = run_hot(&off_spec);
    assert_healthy("coalesce-on", &on);
    assert_healthy("coalesce-off", &off);

    // Identical commit outcomes: the commutative load with ample stock
    // commits every attempt in both transports — no aborts either way.
    assert!(on.write_commits() > 100, "on-run barely committed");
    assert!(off.write_commits() > 100, "off-run barely committed");
    assert_eq!(on.write_aborts(), 0, "coalescing introduced aborts");
    assert_eq!(off.write_aborts(), 0, "baseline unexpectedly aborted");

    // Off is the PR 3 transport: one frame per message.
    assert_eq!(
        off.net.msgs_sent, off.net.payload_msgs,
        "with coalescing off every message is its own frame"
    );

    // On: strictly fewer frames for comparable (closed-loop) work, and
    // a multi-fold drop in protocol frames per commit.
    assert!(
        on.net.msgs_sent < off.net.msgs_sent,
        "coalescing must ship strictly fewer frames: {} vs {}",
        on.net.msgs_sent,
        off.net.msgs_sent
    );
    assert!(
        on.net.payload_msgs > on.net.msgs_sent,
        "envelopes must actually batch messages"
    );
    let on_mpc = on.net.protocol.msgs as f64 / on.write_commits() as f64;
    let off_mpc = off.net.protocol.msgs as f64 / off.write_commits() as f64;
    eprintln!(
        "protocol frames/commit: on {on_mpc:.1} vs off {off_mpc:.1} ({:.2}x); \
         total {:.1} vs {:.1}; coalesce factor {:.2}x",
        off_mpc / on_mpc,
        on.msgs_per_commit().unwrap(),
        off.msgs_per_commit().unwrap(),
        on.net.payload_msgs as f64 / on.net.msgs_sent as f64,
    );
    assert!(
        on_mpc * 2.0 <= off_mpc,
        "coalescing must cut protocol frames/commit at least 2x on the \
         fan-out-heavy load: {on_mpc:.1} vs {off_mpc:.1}"
    );
}

/// The flood case: a restarted node syncing via the legacy per-key
/// `SyncKey` flood sends hundreds of same-destination messages from
/// one handler — the outbox collapses them into a handful of envelopes
/// (≥ 3x fewer sync frames; in practice orders of magnitude).
#[test]
fn coalescing_collapses_the_sync_flood() {
    let s = SimDuration::from_secs;
    let base = |coalesce: bool| {
        let mut spec = hot_spec(58, coalesce);
        spec.durability = true;
        spec.drain = s(20);
        spec.faults = FaultPlan::new().crash_restart(DcId(1), 0, s(5), s(4));
        // The per-key flood baseline (PR 2) — the worst-case message
        // storm the transport can be handed.
        spec.protocol.sync_batching = false;
        spec
    };
    let (on, _) = run_hot(&base(true));
    let (off, _) = run_hot(&base(false));
    for (label, report) in [("on", &on), ("off", &off)] {
        assert_eq!(report.recoveries.len(), 1, "{label}: the restart ran");
        assert_healthy(label, report);
        let audit = report.audit.as_ref().expect("audited");
        let reference = audit.committed_digests[0];
        for r in &report.recoveries {
            assert_eq!(
                audit.committed_digests[r.node.0 as usize], reference,
                "{label}: restarted node diverged"
            );
        }
    }
    eprintln!(
        "sync flood: on {} frames ({} msgs), off {} frames",
        on.net.sync.msgs, on.net.sync.payloads, off.net.sync.msgs
    );
    assert!(
        on.net.sync.msgs * 3 <= off.net.sync.msgs,
        "the flood must coalesce at least 3x: {} vs {} sync frames",
        on.net.sync.msgs,
        off.net.sync.msgs
    );
}

/// Coalescing (including the Nagle flush window) stays deterministic:
/// same seed, same spec ⇒ byte-identical audits.
#[test]
fn coalesced_runs_are_deterministic() {
    let (a, _) = run_hot(&hot_spec(33, true));
    let (b, _) = run_hot(&hot_spec(33, true));
    assert_eq!(a.write_commits(), b.write_commits());
    assert_eq!(a.net, b.net, "wire accounting is reproducible");
    assert_eq!(a.audit, b.audit, "audits are byte-identical across reruns");
}

//! Cross-protocol comparison on the micro-benchmark: the latency and
//! behaviour orderings the paper's evaluation establishes must hold in
//! the simulated deployment too.

use std::sync::Arc;

use mdcc_cluster::{
    run_mdcc, run_megastore, run_qw, run_tpc, ClientPlacement, ClusterSpec, MdccMode, NetKind,
    Report,
};
use mdcc_common::{DcId, SimDuration};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};

fn micro_catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn spec() -> ClusterSpec {
    ClusterSpec {
        seed: 7,
        clients: 15,
        shards_per_dc: 2,
        warmup: SimDuration::from_secs(5),
        duration: SimDuration::from_secs(25),
        jitter: 0.05,
        ..ClusterSpec::default()
    }
}

const ITEMS: u64 = 2_000;

fn run_variant(mode: MdccMode, commutative: bool, seed: u64) -> (Report, mdcc_core::TxnStats) {
    let mut s = spec();
    s.seed = seed;
    let catalog = micro_catalog();
    let data = initial_items(ITEMS, 99);
    let mut factory = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            commutative,
            ..MicroConfig::default()
        }))
    };
    run_mdcc(&s, catalog, &data, &mut factory, mode)
}

#[test]
fn mdcc_commits_write_txns_with_one_round_trip_latency() {
    let (report, stats) = run_variant(MdccMode::Full, true, 11);
    assert!(
        report.write_commits() > 100,
        "got {}",
        report.write_commits()
    );
    let median = report.median_write_ms().expect("commits exist");
    // From the median client, a fast quorum is the 4th-closest DC:
    // 120–190 ms RTT plus local reads. The paper's micro median is 245 ms.
    assert!(
        (120.0..320.0).contains(&median),
        "median {median} ms outside one-round-trip range"
    );
    // Low-contention uniform workload: virtually everything goes fast.
    assert!(stats.fast_commits * 10 >= stats.committed * 9);
    // Aborts stay rare (demarcation edges on low-stock items can reject a
    // handful of unlucky concurrent decrements).
    let aborts = report.write_aborts();
    let total = report.write_commits() + aborts;
    assert!(
        aborts * 40 <= total,
        "abort rate must stay under 2.5%: {aborts}/{total}"
    );
}

#[test]
fn protocol_latency_ordering_matches_figure5() {
    // MDCC (fast+commutative) < Multi (master round trips) < 2PC
    // (two rounds, all replicas). Same workload, same seed.
    let (full, _) = run_variant(MdccMode::Full, true, 21);
    let (multi, _) = run_variant(MdccMode::Multi, false, 21);

    let mut s = spec();
    s.seed = 21;
    let catalog = micro_catalog();
    let data = initial_items(ITEMS, 99);
    let mut factory = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            commutative: false,
            ..MicroConfig::default()
        }))
    };
    let tpc = run_tpc(&s, catalog, &data, &mut factory);

    let m_full = full.median_write_ms().expect("mdcc commits");
    let m_multi = multi.median_write_ms().expect("multi commits");
    let m_tpc = tpc.median_write_ms().expect("2pc commits");
    assert!(
        m_full < m_multi,
        "MDCC ({m_full} ms) must beat Multi ({m_multi} ms)"
    );
    assert!(
        m_multi < m_tpc,
        "Multi ({m_multi} ms) must beat 2PC ({m_tpc} ms)"
    );
}

#[test]
fn mdcc_tracks_quorum_writes_four() {
    // §5.2.1: MDCC's fast commit waits for the same 4th response QW-4
    // waits for; QW-3 returns one response earlier and must be fastest.
    let (mdcc, _) = run_variant(MdccMode::Full, true, 31);
    let mut s = spec();
    s.seed = 31;
    let catalog = micro_catalog();
    let data = initial_items(ITEMS, 99);
    let mut factory = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            commutative: true,
            ..MicroConfig::default()
        }))
    };
    let qw3 = run_qw(&s, catalog.clone(), &data, &mut factory, 3);
    let mut factory2 = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            commutative: true,
            ..MicroConfig::default()
        }))
    };
    let qw4 = run_qw(&s, catalog, &data, &mut factory2, 4);
    let m_qw3 = qw3.median_write_ms().unwrap();
    let m_qw4 = qw4.median_write_ms().unwrap();
    let m_mdcc = mdcc.median_write_ms().unwrap();
    assert!(m_qw3 < m_qw4, "QW-3 ({m_qw3}) < QW-4 ({m_qw4})");
    assert!(
        m_mdcc < m_qw4 * 1.5,
        "MDCC ({m_mdcc}) should be in QW-4's ({m_qw4}) neighbourhood"
    );
    assert!(m_qw3 < m_mdcc, "eventual consistency stays cheapest");
}

#[test]
fn megastore_serializes_and_queues() {
    let mut s = spec();
    s.seed = 41;
    s.clients = 15;
    s.client_placement = ClientPlacement::AllIn(DcId(0));
    let catalog = micro_catalog();
    let data = initial_items(ITEMS, 99);
    let mut factory = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            commutative: true,
            ..MicroConfig::default()
        }))
    };
    let (mega, stats) = run_megastore(&s, catalog, &data, &mut factory);
    let (mdcc, _) = run_variant(MdccMode::Full, true, 41);
    let m_mega = mega.median_write_ms().expect("mega commits");
    let m_mdcc = mdcc.median_write_ms().expect("mdcc commits");
    // One transaction at a time with 15 always-pending writers ⇒ heavy
    // queueing, far beyond MDCC's medians (orders of magnitude in the
    // paper's 100-client setting).
    assert!(
        m_mega > 3.0 * m_mdcc,
        "Megastore* ({m_mega} ms) must queue far beyond MDCC ({m_mdcc} ms)"
    );
    assert!(stats.max_queue >= 5, "queue high-water {}", stats.max_queue);
    assert!(stats.committed > 0);
}

#[test]
fn uniform_network_gives_deterministic_reports() {
    let run = |seed: u64| {
        let mut s = spec();
        s.seed = seed;
        s.net = NetKind::Uniform { rtt_ms: 100.0 };
        s.jitter = 0.0;
        s.duration = SimDuration::from_secs(10);
        let catalog = micro_catalog();
        let data = initial_items(500, 9);
        let mut factory = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
            Box::new(MicroWorkload::new(MicroConfig {
                items: 500,
                ..MicroConfig::default()
            }))
        };
        let (report, _) = run_mdcc(&s, catalog, &data, &mut factory, MdccMode::Full);
        report
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.records, b.records);
}

#[test]
fn dc_failure_mid_run_does_not_stop_commits() {
    let mut s = spec();
    s.seed = 51;
    s.client_placement = ClientPlacement::AllIn(DcId(0));
    s.warmup = SimDuration::from_secs(5);
    s.duration = SimDuration::from_secs(30);
    // Fail US-East (the closest DC to the clients) 15 s in.
    s.fail_dcs = vec![(SimDuration::from_secs(15), DcId(1))];
    let catalog = micro_catalog();
    let data = initial_items(ITEMS, 99);
    let mut factory = |_i: usize, _dc: DcId, _p: &_| -> Box<dyn mdcc_workloads::Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: ITEMS,
            ..MicroConfig::default()
        }))
    };
    let (report, _) = run_mdcc(&s, catalog, &data, &mut factory, MdccMode::Full);
    let series = report.write_time_series(SimDuration::from_secs(5));
    // Commits continue in every bucket, including after the failure.
    for (t, _, count) in &series {
        assert!(*count > 0, "no commits in bucket at {t}s");
    }
    // Average latency steps up after the outage (farther quorums).
    let before: f64 = series[..2].iter().map(|(_, avg, _)| avg).sum::<f64>() / 2.0;
    let after: f64 = series[series.len() - 2..]
        .iter()
        .map(|(_, avg, _)| avg)
        .sum::<f64>()
        / 2.0;
    assert!(
        after > before,
        "latency must rise after the outage (before {before:.1} ms, after {after:.1} ms)"
    );
}

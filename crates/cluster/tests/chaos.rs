//! Chaos testing: MDCC under message loss and jitter.
//!
//! Quorum protocols must mask lost messages; the recovery paths (learn
//! timeouts, read retries, collision recovery, dangling-transaction
//! resolution) must keep every transaction live. These runs inject
//! uniform message loss — through the first-class
//! [`ClusterSpec::drop_prob`] knob — on top of jittery wide-area links
//! and assert the system keeps committing and never violates its
//! constraint.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, MdccMode};
use mdcc_common::{DcId, SimDuration};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn run_with_loss(drop_prob: f64, seed: u64) -> (usize, usize, Option<i64>) {
    let spec = ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: SimDuration::from_secs(3),
        duration: SimDuration::from_secs(20),
        jitter: 0.25,
        drop_prob,
        ..ClusterSpec::default()
    };
    let data = initial_items(1_000, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: 1_000,
            ..MicroConfig::default()
        }))
    };
    let (report, _) = run_mdcc(&spec, catalog(), &data, &mut factory, MdccMode::Full);
    let min_stock = report.audit.as_ref().and_then(|a| a.min_of("stock"));
    (report.write_commits(), report.write_aborts(), min_stock)
}

#[test]
fn commits_survive_heavy_jitter() {
    let (commits, _, _) = run_with_loss(0.0, 11);
    assert!(commits > 100, "got {commits}");
}

#[test]
fn commits_survive_uniform_message_loss() {
    // Every message — proposal, vote, visibility, read — has a 2 % chance
    // of vanishing. Retries and recovery must keep the loop alive.
    let (commits, aborts, min_stock) = run_with_loss(0.02, 12);
    assert!(commits > 100, "got {commits} commits, {aborts} aborts");
    assert!(
        min_stock.expect("stock audited") >= 0,
        "constraint violated"
    );
}

#[test]
fn commits_survive_harsh_message_loss() {
    // 10 % loss: most transactions need at least one retry somewhere.
    let (commits, aborts, min_stock) = run_with_loss(0.10, 13);
    assert!(commits > 50, "got {commits} commits, {aborts} aborts");
    assert!(
        min_stock.expect("stock audited") >= 0,
        "constraint violated"
    );
}

#[test]
fn extreme_loss_does_not_livelock_on_mode_flapping() {
    // At ~15 % loss, replicas' ballot modes diverge (a fast-mode reopen
    // is heard by some replicas and not others). Without master-side
    // damping of the GoFast redirect this ping-pongs proposals between
    // fast and classic forever and the message volume compounds — this
    // run used to take minutes of host time per simulated second. It
    // must finish promptly and keep making progress.
    let (commits, aborts, min_stock) = run_with_loss(0.15, 14);
    assert!(commits > 20, "got {commits} commits, {aborts} aborts");
    assert!(
        min_stock.expect("stock audited") >= 0,
        "constraint violated"
    );
}

#[test]
fn loss_plus_dc_brownout_still_commits() {
    // The original brownout emulation, now layered on true message loss:
    // one remote DC goes dark mid-run and stays dark while 2 % of all
    // other traffic is lost too.
    let spec = ClusterSpec {
        seed: 14,
        clients: 10,
        shards_per_dc: 1,
        warmup: SimDuration::from_secs(3),
        duration: SimDuration::from_secs(20),
        jitter: 0.25,
        drop_prob: 0.02,
        fail_dcs: vec![(SimDuration::from_secs(8), DcId(4))],
        ..ClusterSpec::default()
    };
    let data = initial_items(1_000, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: 1_000,
            ..MicroConfig::default()
        }))
    };
    let (report, _) = run_mdcc(&spec, catalog(), &data, &mut factory, MdccMode::Full);
    let commits = report.write_commits();
    assert!(commits > 100, "got {commits}");
}

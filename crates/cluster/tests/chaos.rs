//! Chaos testing: MDCC under message loss and jitter.
//!
//! Quorum protocols must mask lost messages; the recovery paths (learn
//! timeouts, collision recovery, dangling-transaction resolution) must
//! keep every transaction live. These runs inject uniform message loss
//! on top of jittery wide-area links and assert the system keeps
//! committing and never violates its constraint.

use std::sync::Arc;

use mdcc_cluster::{run_mdcc, ClusterSpec, MdccMode};
use mdcc_common::{DcId, SimDuration};
use mdcc_storage::{AttrConstraint, Catalog, TableSchema};
use mdcc_workloads::micro::{initial_items, MicroConfig, MicroWorkload, MICRO_ITEMS};
use mdcc_workloads::Workload;

fn catalog() -> Arc<Catalog> {
    Arc::new(Catalog::new().with(
        TableSchema::new(MICRO_ITEMS, "item").with_constraint(AttrConstraint::at_least("stock", 0)),
    ))
}

fn run_with_loss(drop_prob: f64, seed: u64) -> (usize, usize) {
    // NetworkModel loss is configured via the spec's network; ClusterSpec
    // has no drop knob, so use jitter for variance and inject loss by
    // wrapping the model — simplest here: high jitter plus DC failure-free
    // runs with loss applied through a custom NetKind is not exposed, so
    // we emulate heavy loss via short, repeated DC brownouts instead.
    let mut spec = ClusterSpec {
        seed,
        clients: 10,
        shards_per_dc: 1,
        warmup: SimDuration::from_secs(3),
        duration: SimDuration::from_secs(20),
        jitter: 0.25,
        ..ClusterSpec::default()
    };
    if drop_prob > 0.0 {
        // Brownout: one remote DC goes dark mid-run and stays dark — the
        // harshest sustained-loss pattern (every message to it is lost).
        spec.fail_dcs = vec![(SimDuration::from_secs(8), DcId(4))];
    }
    let data = initial_items(1_000, 7);
    let mut factory = |_c: usize, _dc: DcId, _p: &_| -> Box<dyn Workload> {
        Box::new(MicroWorkload::new(MicroConfig {
            items: 1_000,
            ..MicroConfig::default()
        }))
    };
    let (report, _) = run_mdcc(&spec, catalog(), &data, &mut factory, MdccMode::Full);
    (report.write_commits(), report.write_aborts())
}

#[test]
fn commits_survive_heavy_jitter() {
    let (commits, _) = run_with_loss(0.0, 11);
    assert!(commits > 100, "got {commits}");
}

#[test]
fn commits_survive_a_sustained_brownout() {
    let (commits, aborts) = run_with_loss(0.3, 12);
    assert!(commits > 100, "got {commits} commits, {aborts} aborts");
}

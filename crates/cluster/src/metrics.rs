//! Transaction records and the statistics the paper's figures plot,
//! plus the durability/recovery telemetry of fault-schedule runs.

use std::time::Duration;

use mdcc_common::{DcId, NodeId, SimDuration, SimTime};
use mdcc_recovery::RecoveryInfo;
use mdcc_sim::{ProfileEntry, TrafficClass, TrafficTotals, WorldStats};
use mdcc_trace::{Anatomy, TraceData};

/// One storage-node restart as observed by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecovery {
    /// The restarted node.
    pub node: NodeId,
    /// Its data center.
    pub dc: DcId,
    /// Its shard index within the data center.
    pub shard: usize,
    /// When the node crashed.
    pub crashed_at: SimTime,
    /// When it restarted (recovery replay happens at this instant).
    pub restarted_at: SimTime,
    /// What the replay cost (checkpoint records, WAL records, bytes,
    /// restored pending transactions).
    pub info: RecoveryInfo,
}

impl NodeRecovery {
    /// How long the node was down.
    pub fn downtime(&self) -> SimDuration {
        self.restarted_at - self.crashed_at
    }
}

/// End-of-run consistency audit of an MDCC cluster, harvested from every
/// storage node after the experiment (and its drain period) finished.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterAudit {
    /// FNV digest of each storage node's committed state `(key, version,
    /// value)`, indexed by dense node id (dc-major). Replicas of the same
    /// shard that have converged hold equal digests.
    pub committed_digests: Vec<u64>,
    /// Options still pending (accepted, unresolved) across all nodes.
    pub pending_options: usize,
    /// Live clients with unfinished commit attempts.
    pub stuck_clients: usize,
    /// Minimum committed value per integer attribute across every record
    /// and replica, sorted by attribute name — the `stock ≥ 0` check
    /// reads its attribute here.
    pub attr_minima: Vec<(String, i64)>,
    /// Dangling transactions resolved by storage nodes (peer recovery).
    pub dangling_resolved: u64,
    /// Records whose state changed through post-restart peer sync.
    pub sync_adoptions: u64,
    /// Durable checkpoints written across all nodes.
    pub checkpoints: u64,
    /// WAL bytes written across all nodes (pre-compaction total).
    pub wal_bytes_written: u64,
}

impl ClusterAudit {
    /// The audited minimum of one integer attribute, if any record has it.
    pub fn min_of(&self, attr: &str) -> Option<i64> {
        self.attr_minima
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, v)| *v)
    }
}

/// Bytes-on-wire accounting for one run, harvested from the simulated
/// transport and broken out by traffic class — the cost model §1 of the
/// paper motivates (wide-area bytes are the scarce resource).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetReport {
    /// Wire frames handed to the network. With envelope coalescing on
    /// (`ProtocolConfig::coalesce`, the default) a batched envelope
    /// counts once; `payload_msgs / msgs_sent` is the amortization
    /// factor the outbox achieved.
    pub msgs_sent: u64,
    /// Process-level messages carried by those frames (equals
    /// `msgs_sent` when coalescing is off).
    pub payload_msgs: u64,
    /// Wire bytes handed to the network.
    pub bytes_sent: u64,
    /// Frames delivered to live processes.
    pub delivered: u64,
    /// Frames lost (network loss, dead node, failed DC).
    pub dropped: u64,
    /// Commit-protocol traffic (proposals, votes, phases, visibility).
    pub protocol: TrafficTotals,
    /// Read requests/responses.
    pub read: TrafficTotals,
    /// Anti-entropy / recovery-sync traffic.
    pub sync: TrafficTotals,
    /// Delta-vote divergence repair (`CstructPull`/`CstructFull`):
    /// `repair.msgs / 2` approximates the number of read-repair round
    /// trips the run needed.
    pub repair: TrafficTotals,
    /// WAL fsyncs charged across all nodes. Zero when `fsync_latency`
    /// is zero (appends are free); with group commit on, one covering
    /// fsync serves every append in its batch, so
    /// `fsyncs / committed_count` is the amortization the commit
    /// buffer achieved.
    pub fsyncs: u64,
}

impl NetReport {
    /// Reduces a world's counters into the report form.
    pub fn from_world(stats: WorldStats) -> Self {
        Self {
            msgs_sent: stats.sent,
            payload_msgs: stats.payload_msgs,
            bytes_sent: stats.bytes_sent,
            delivered: stats.delivered,
            dropped: stats.dropped,
            protocol: stats.class(TrafficClass::Protocol),
            read: stats.class(TrafficClass::Read),
            sync: stats.class(TrafficClass::Sync),
            repair: stats.class(TrafficClass::Repair),
            fsyncs: stats.fsyncs,
        }
    }
}

/// Host-side cost of one run: how much real time and how many event
/// dispatches the experiment burned. Purely observational — simulated
/// results never depend on these numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunPerf {
    /// Wall-clock time the run took on the host.
    pub wall: Duration,
    /// Handler invocations the event loop dispatched.
    pub events: u64,
    /// Worker threads the engine ran on (1 = sequential merge; >1 =
    /// the conservative parallel per-DC engine, one thread per DC).
    pub threads: usize,
}

impl RunPerf {
    /// Simulator events processed per host second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.events as f64 / secs
    }
}

/// One finished transaction as seen by a client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxnRecord {
    /// When the interaction began (before its read phase).
    pub started: SimTime,
    /// When the outcome was known (commit point / abort).
    pub finished: SimTime,
    /// Whether it committed.
    pub committed: bool,
    /// Whether it intended to write.
    pub is_write: bool,
    /// Interaction label ("buy", "buy-confirm", …).
    pub label: &'static str,
}

impl TxnRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.finished - self.started
    }
}

/// Five-number summary for box plots (Figure 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// The reduced result of one experiment run.
#[derive(Debug, Clone)]
pub struct Report {
    /// All transaction records inside the measurement window, from every
    /// client, sorted by finish time.
    pub records: Vec<TxnRecord>,
    /// Measurement window start.
    pub window_start: SimTime,
    /// Measurement window end.
    pub window_end: SimTime,
    /// Storage-node restarts performed by the fault schedule (MDCC runs
    /// only; empty otherwise).
    pub recoveries: Vec<NodeRecovery>,
    /// End-of-run consistency audit (MDCC runs only).
    pub audit: Option<ClusterAudit>,
    /// Bytes-on-wire accounting, by traffic class. Covers the whole run
    /// including warm-up and drain (the wire does not stop billing
    /// outside the measurement window).
    pub net: NetReport,
    /// Harvested spans and link gauges when the run traced
    /// ([`ClusterSpec::trace`]); `None` otherwise.
    pub trace: Option<TraceData>,
    /// Host wall-clock cost of the run (always collected; cheap).
    pub perf: RunPerf,
    /// Per-node event-loop profile, hottest node first (MDCC runs; the
    /// wall column is zero unless `TraceConfig::profile` was set).
    pub profile: Vec<ProfileEntry>,
    /// Storage-engine counters summed across every node (MDCC runs;
    /// all-zero under the in-memory backend, which has no segments).
    pub engine: mdcc_storage::EngineStats,
    /// Dynamic-mastership counters summed across every node (MDCC runs
    /// with `protocol.mastership.enabled`; all-zero otherwise).
    pub mastership: mdcc_mastership::MastershipStats,
    /// Every lease tenure granted during the run, sorted by
    /// `(shard, from, ballot)` — the raw material of the no-two-masters
    /// audit. Empty unless dynamic mastership ran.
    pub lease_spans: Vec<mdcc_mastership::LeaseSpan>,
}

impl Report {
    /// Builds a report from raw client records, keeping only transactions
    /// that *finished* inside `[warmup, warmup + duration)`.
    pub fn new(mut records: Vec<TxnRecord>, warmup: SimDuration, duration: SimDuration) -> Self {
        let window_start = SimTime::ZERO + warmup;
        let window_end = window_start + duration;
        records.retain(|r| r.finished >= window_start && r.finished < window_end);
        records.sort_by_key(|r| r.finished);
        Self {
            records,
            window_start,
            window_end,
            recoveries: Vec::new(),
            audit: None,
            net: NetReport::default(),
            trace: None,
            perf: RunPerf::default(),
            profile: Vec::new(),
            engine: mdcc_storage::EngineStats::default(),
            mastership: mdcc_mastership::MastershipStats::default(),
            lease_spans: Vec::new(),
        }
    }

    /// Per-phase latency anatomy from the run's trace (`None` when the
    /// run did not trace).
    pub fn anatomy(&self) -> Option<Anatomy> {
        self.trace.as_ref().map(|t| t.anatomy())
    }

    /// Committed transactions of any kind inside the window — the
    /// denominator of every per-commit wire figure.
    pub fn committed_count(&self) -> usize {
        self.records.iter().filter(|r| r.committed).count()
    }

    /// Wire bytes spent per committed transaction (all classes), the
    /// figure-of-merit the byte-accurate transport enables. `None` when
    /// nothing committed.
    pub fn bytes_per_commit(&self) -> Option<f64> {
        match self.committed_count() {
            0 => None,
            commits => Some(self.net.bytes_sent as f64 / commits as f64),
        }
    }

    /// Wire frames spent per committed transaction (all classes) — the
    /// figure-of-merit of envelope coalescing: every frame pays the
    /// per-message service floor, so this is the count queueing theory
    /// cares about. `None` when nothing committed.
    pub fn msgs_per_commit(&self) -> Option<f64> {
        match self.committed_count() {
            0 => None,
            commits => Some(self.net.msgs_sent as f64 / commits as f64),
        }
    }

    /// WAL fsyncs charged per committed transaction — the
    /// figure-of-merit of group commit, landing beside bytes/commit
    /// (coalescing) and msgs/commit (enveloping). `None` when nothing
    /// committed.
    pub fn fsyncs_per_commit(&self) -> Option<f64> {
        match self.committed_count() {
            0 => None,
            commits => Some(self.net.fsyncs as f64 / commits as f64),
        }
    }

    /// Commits whose outcome was learned inside `[from, to)` — used to
    /// check the cluster kept committing *while* nodes were down.
    pub fn commits_between(&self, from: SimTime, to: SimTime) -> usize {
        self.records
            .iter()
            .filter(|r| r.committed && r.is_write && r.finished >= from && r.finished < to)
            .count()
    }

    /// Latencies (ms) of committed write transactions — the quantity the
    /// paper's response-time figures plot.
    pub fn write_latencies_ms(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.is_write && r.committed)
            .map(|r| r.latency().as_millis_f64())
            .collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Committed write transactions.
    pub fn write_commits(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.is_write && r.committed)
            .count()
    }

    /// Aborted write transactions (protocol aborts and client-side
    /// aborts).
    pub fn write_aborts(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.is_write && !r.committed)
            .count()
    }

    /// Committed transactions of any kind per second of window time.
    pub fn throughput_tps(&self) -> f64 {
        let secs = (self.window_end - self.window_start).as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.committed_count() as f64 / secs
    }

    /// Median committed-write latency in ms (`None` when no writes
    /// committed).
    pub fn median_write_ms(&self) -> Option<f64> {
        percentile(&self.write_latencies_ms(), 50.0)
    }

    /// An arbitrary percentile of committed-write latency.
    pub fn write_percentile_ms(&self, p: f64) -> Option<f64> {
        percentile(&self.write_latencies_ms(), p)
    }

    /// Average committed-write latency in ms.
    pub fn mean_write_ms(&self) -> Option<f64> {
        let v = self.write_latencies_ms();
        if v.is_empty() {
            return None;
        }
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }

    /// CDF of committed-write latencies: `(latency_ms, fraction ≤)` at
    /// each recorded point, downsampled to at most `points` entries.
    pub fn write_cdf(&self, points: usize) -> Vec<(f64, f64)> {
        let v = self.write_latencies_ms();
        if v.is_empty() {
            return Vec::new();
        }
        let n = v.len();
        let step = (n / points.max(1)).max(1);
        let mut out = Vec::new();
        for i in (0..n).step_by(step) {
            out.push((v[i], (i + 1) as f64 / n as f64));
        }
        if out.last().map(|(l, _)| *l) != Some(v[n - 1]) {
            out.push((v[n - 1], 1.0));
        }
        out
    }

    /// Box-plot summary of committed-write latencies.
    pub fn write_boxplot(&self) -> Option<BoxStats> {
        let v = self.write_latencies_ms();
        if v.is_empty() {
            return None;
        }
        Some(BoxStats {
            min: v[0],
            q1: percentile(&v, 25.0).expect("non-empty"),
            median: percentile(&v, 50.0).expect("non-empty"),
            q3: percentile(&v, 75.0).expect("non-empty"),
            max: v[v.len() - 1],
        })
    }

    /// Average committed-write latency per time bucket — the Figure 8
    /// time series. Returns `(bucket_start_secs, avg_ms, count)`.
    pub fn write_time_series(&self, bucket: SimDuration) -> Vec<(f64, f64, usize)> {
        let mut out: Vec<(f64, f64, usize)> = Vec::new();
        let mut t = self.window_start;
        let mut idx = 0usize;
        let records: Vec<&TxnRecord> = self
            .records
            .iter()
            .filter(|r| r.is_write && r.committed)
            .collect();
        while t < self.window_end {
            let end = t + bucket;
            let mut sum = 0.0;
            let mut count = 0usize;
            while idx < records.len() && records[idx].finished < end {
                sum += records[idx].latency().as_millis_f64();
                count += 1;
                idx += 1;
            }
            let avg = if count > 0 { sum / count as f64 } else { 0.0 };
            out.push((t.as_secs_f64(), avg, count));
            t = end;
        }
        out
    }
}

/// Nearest-rank percentile of a pre-sorted slice.
///
/// `p` is a percentage and is clamped to `[0, 100]`: anything at or
/// below zero (including NaN) returns the minimum, anything at or above
/// 100 the maximum — so `p = 1.0` is the 1st percentile, never an
/// out-of-range index.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    let (first, last) = (*sorted.first()?, *sorted.last()?);
    // `p.is_nan() || p <= 0.0` spelled to catch NaN in one comparison.
    if p.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Some(first);
    }
    if p >= 100.0 {
        return Some(last);
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start_ms: u64, latency_ms: u64, committed: bool, is_write: bool) -> TxnRecord {
        TxnRecord {
            started: SimTime::from_millis(start_ms),
            finished: SimTime::from_millis(start_ms + latency_ms),
            committed,
            is_write,
            label: "t",
        }
    }

    fn report(records: Vec<TxnRecord>) -> Report {
        Report::new(records, SimDuration::ZERO, SimDuration::from_secs(100))
    }

    #[test]
    fn window_filters_and_sorts() {
        let r = Report::new(
            vec![rec(60_000, 10, true, true), rec(1_000, 10, true, true)],
            SimDuration::from_secs(30),
            SimDuration::from_secs(60),
        );
        assert_eq!(r.records.len(), 1, "warm-up record dropped");
        assert_eq!(r.records[0].started, SimTime::from_secs(60));
    }

    #[test]
    fn medians_and_percentiles() {
        let r = report(vec![
            rec(0, 100, true, true),
            rec(0, 200, true, true),
            rec(0, 300, true, true),
            rec(0, 400, true, true),
            rec(0, 50_000, false, true), // aborted: excluded
            rec(0, 5, true, false),      // read: excluded
        ]);
        assert_eq!(r.median_write_ms(), Some(200.0));
        assert_eq!(r.write_percentile_ms(100.0), Some(400.0));
        assert_eq!(r.write_percentile_ms(25.0), Some(100.0));
        assert_eq!(r.write_commits(), 4);
        assert_eq!(r.write_aborts(), 1);
        assert_eq!(r.mean_write_ms(), Some(250.0));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let r = report((0..100).map(|i| rec(0, (i + 1) * 10, true, true)).collect());
        let cdf = r.write_cdf(10);
        assert!(cdf.len() <= 12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn boxplot_five_numbers() {
        let r = report((1..=100).map(|i| rec(0, i * 10, true, true)).collect());
        let b = r.write_boxplot().unwrap();
        assert_eq!(b.min, 10.0);
        assert_eq!(b.q1, 250.0);
        assert_eq!(b.median, 500.0);
        assert_eq!(b.q3, 750.0);
        assert_eq!(b.max, 1_000.0);
    }

    #[test]
    fn throughput_counts_commits_over_window() {
        let r = Report::new(
            (0..50)
                .map(|i| rec(i * 100, 10, true, i % 2 == 0))
                .collect(),
            SimDuration::ZERO,
            SimDuration::from_secs(10),
        );
        assert!((r.throughput_tps() - 5.0).abs() < 0.01);
    }

    #[test]
    fn time_series_buckets_average_latency() {
        let r = Report::new(
            vec![
                rec(500, 100, true, true),
                rec(600, 300, true, true),
                rec(1_500, 50, true, true),
            ],
            SimDuration::ZERO,
            SimDuration::from_secs(2),
        );
        let series = r.write_time_series(SimDuration::from_secs(1));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].2, 2);
        assert!((series[0].1 - 200.0).abs() < 0.01);
        assert_eq!(series[1].2, 1);
        assert!((series[1].1 - 50.0).abs() < 0.01);
    }

    #[test]
    fn per_commit_wire_figures() {
        let mut r = report(vec![
            rec(0, 10, true, true),
            rec(0, 10, true, false),
            rec(0, 10, false, true),
        ]);
        r.net.msgs_sent = 30;
        r.net.bytes_sent = 600;
        r.net.fsyncs = 7;
        assert_eq!(r.msgs_per_commit(), Some(15.0));
        assert_eq!(r.bytes_per_commit(), Some(300.0));
        assert_eq!(r.fsyncs_per_commit(), Some(3.5));
        let nothing_committed = report(vec![rec(0, 10, false, true)]);
        assert_eq!(nothing_committed.msgs_per_commit(), None);
        assert_eq!(nothing_committed.fsyncs_per_commit(), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&v, 75.0), Some(3.0));
        assert_eq!(percentile(&v, 1.0), Some(1.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_empty_set() {
        assert_eq!(percentile(&[], 0.0), None);
        assert_eq!(percentile(&[], 1.0), None);
        assert_eq!(percentile(&[], 100.0), None);
        assert_eq!(percentile(&[], f64::NAN), None);
    }

    #[test]
    fn percentile_single_sample_is_every_percentile() {
        let one = [7.5];
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&one, p), Some(7.5));
        }
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, -5.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 250.0), Some(4.0));
        assert_eq!(percentile(&v, f64::NAN), Some(1.0));
    }

    #[test]
    fn run_perf_rate() {
        let perf = RunPerf {
            wall: Duration::from_millis(500),
            events: 1_000,
            threads: 1,
        };
        assert!((perf.events_per_sec() - 2_000.0).abs() < 1e-9);
        assert_eq!(RunPerf::default().events_per_sec(), 0.0);
    }
}

//! The experiment harness: five-data-center deployments, closed-loop
//! clients and metrics.
//!
//! This crate assembles full clusters for every protocol in the paper's
//! evaluation — MDCC (plus its *Fast* and *Multi* ablations), quorum
//! writes, two-phase commit and Megastore* — loads the same initial data
//! into each, drives the same [`mdcc_workloads::Workload`] through
//! closed-loop clients, and reduces the resulting transaction records to
//! the statistics the paper's figures plot (medians, CDFs, box plots,
//! commit/abort counts, throughput, time series).

pub mod build;
pub mod clients;
pub mod faults;
pub mod metrics;

pub use build::{
    run_mdcc, run_megastore, run_qw, run_tpc, ClientPlacement, ClusterSpec, MdccMode, NetKind,
};
pub use faults::{FaultEvent, FaultPlan};
pub use metrics::{BoxStats, ClusterAudit, NetReport, NodeRecovery, Report, RunPerf, TxnRecord};

//! Cluster builders and experiment runners, one per protocol.

use std::sync::Arc;

use mdcc_baselines::megastore::{MegaMaster, MegaReplica, MegaStats};
use mdcc_baselines::qw::{QwStorage, QwWriter};
use mdcc_baselines::twopc::{TpcCoordinator, TpcStorage};
use mdcc_baselines::BaselineStore;
use mdcc_common::placement::MasterPolicy;
use mdcc_common::{
    DcId, Key, NodeId, Placement, ProtocolConfig, Row, SimDuration, SimTime, StaticPlacement,
};
use mdcc_core::{StorageNodeProcess, TmConfig, TransactionManager, TxnStats};
use mdcc_sim::{presets, NetworkModel, World, WorldConfig};
use mdcc_storage::{Catalog, RecordStore};
use mdcc_workloads::Workload;

use crate::clients::{MdccClient, MegastoreClient, QwClient, TpcClient};
use crate::metrics::{Report, TxnRecord};

/// Which network model to deploy on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetKind {
    /// The five EC2 regions of the paper (§5.1).
    Ec2Five,
    /// Uniform inter-DC RTT (tests, controlled experiments).
    Uniform {
        /// Round-trip time between any two data centers, ms.
        rtt_ms: f64,
    },
}

/// Where the emulated browsers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPlacement {
    /// Evenly spread over all data centers (the paper's default).
    Even,
    /// All in one data center (Megastore* and the Figure 8 experiment).
    AllIn(DcId),
}

/// MDCC protocol configuration variants of §5.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdccMode {
    /// The full protocol: fast ballots plus commutativity (the workload
    /// decides whether updates are commutative).
    Full,
    /// Fast ballots without commutative support — pair with a workload
    /// that emits physical updates.
    Fast,
    /// All instances Multi-Paxos: every proposal goes through the
    /// record's master and fast ballots never reopen.
    Multi,
}

/// Everything that describes one experiment deployment.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// RNG seed (world + workloads).
    pub seed: u64,
    /// Number of data centers.
    pub dcs: u8,
    /// Storage nodes per data center (shards).
    pub shards_per_dc: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Client placement.
    pub client_placement: ClientPlacement,
    /// Default-master assignment.
    pub master_policy: MasterPolicy,
    /// Network model.
    pub net: NetKind,
    /// Lognormal jitter sigma on one-way delays.
    pub jitter: f64,
    /// Per-message CPU cost at every node.
    pub service_time: SimDuration,
    /// Warm-up period excluded from the report.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub duration: SimDuration,
    /// Data-center outages: `(offset from start, dc)`.
    pub fail_dcs: Vec<(SimDuration, DcId)>,
    /// Protocol parameters (quorums, timeouts, γ).
    pub protocol: ProtocolConfig,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self {
            seed: 42,
            dcs: 5,
            shards_per_dc: 2,
            clients: 20,
            client_placement: ClientPlacement::Even,
            master_policy: MasterPolicy::HashedPerRecord,
            net: NetKind::Ec2Five,
            jitter: 0.08,
            service_time: SimDuration::from_micros(50),
            warmup: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(60),
            fail_dcs: Vec::new(),
            protocol: ProtocolConfig::default(),
        }
    }
}

/// Builds workloads for each client: `(client index, client dc,
/// placement)`.
pub type WorkloadFactory<'a> = dyn FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> + 'a;

fn network(spec: &ClusterSpec) -> NetworkModel {
    let model = match spec.net {
        NetKind::Ec2Five => {
            assert_eq!(spec.dcs, 5, "the EC2 preset is a five-region network");
            presets::ec2_five_dc()
        }
        NetKind::Uniform { rtt_ms } => NetworkModel::uniform(spec.dcs as usize, rtt_ms, 1.0),
    };
    model.with_jitter(spec.jitter)
}

fn client_dc(spec: &ClusterSpec, i: usize) -> DcId {
    match spec.client_placement {
        ClientPlacement::Even => DcId((i % spec.dcs as usize) as u8),
        ClientPlacement::AllIn(dc) => dc,
    }
}

/// Precomputed storage-node id matrix: ids are dense spawn-order ids, so
/// spawning dc-major yields `id = dc * shards + shard`.
fn storage_matrix(spec: &ClusterSpec) -> Vec<Vec<NodeId>> {
    (0..spec.dcs as u32)
        .map(|dc| {
            (0..spec.shards_per_dc as u32)
                .map(|s| NodeId(dc * spec.shards_per_dc as u32 + s))
                .collect()
        })
        .collect()
}

/// Runs the world through the failure schedule and the full experiment
/// span (warm-up + window, plus slack for in-flight transactions).
fn drive<M: 'static>(world: &mut World<M>, spec: &ClusterSpec) {
    let mut failures: Vec<(SimTime, DcId)> = spec
        .fail_dcs
        .iter()
        .map(|(offset, dc)| (SimTime::ZERO + *offset, *dc))
        .collect();
    failures.sort_by_key(|(t, _)| *t);
    let end = SimTime::ZERO + spec.warmup + spec.duration;
    for (t, dc) in failures {
        world.run_until(t.min(end));
        world.fail_dc(dc);
    }
    world.run_until(end);
}

// ---------------------------------------------------------------------
// MDCC.
// ---------------------------------------------------------------------

/// Runs an MDCC experiment; returns the report and the summed TM stats.
pub fn run_mdcc(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
    mode: MdccMode,
) -> (Report, TxnStats) {
    let mut world: World<mdcc_core::Msg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
        },
    );
    let matrix = storage_matrix(spec);
    let placement = StaticPlacement::new(matrix.clone(), spec.master_policy);
    let allow_fast = !matches!(mode, MdccMode::Multi);
    for dc in 0..spec.dcs {
        for shard in 0..spec.shards_per_dc {
            let store = RecordStore::new(spec.protocol.clone(), Arc::clone(&catalog));
            let node = StorageNodeProcess::new(
                spec.protocol.clone(),
                store,
                placement.clone() as Arc<dyn Placement>,
                allow_fast,
            );
            let id = world.spawn(DcId(dc), Box::new(node));
            assert_eq!(id, matrix[dc as usize][shard]);
        }
    }
    for (key, row) in data {
        let shard = placement.shard_of(key);
        for dc_nodes in &matrix {
            world
                .get_mut::<StorageNodeProcess>(dc_nodes[shard])
                .expect("storage node")
                .store_mut()
                .load(key.clone(), row.clone());
        }
    }
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let tm = TransactionManager::new(
            TmConfig {
                protocol: spec.protocol.clone(),
                my_dc: dc,
                assume_classic: matches!(mode, MdccMode::Multi),
            },
            placement.clone() as Arc<dyn Placement>,
        );
        let workload = workload_factory(i, dc, &placement);
        client_ids.push(world.spawn(dc, Box::new(MdccClient::new(tm, workload))));
    }
    drive(&mut world, spec);
    let mut records: Vec<TxnRecord> = Vec::new();
    let mut stats = TxnStats::default();
    let mut in_flight = 0usize;
    for id in client_ids {
        let client = world.get::<MdccClient>(id).expect("client");
        records.extend(client.records.iter().copied());
        let s = client.tm_stats();
        stats.committed += s.committed;
        stats.aborted += s.aborted;
        stats.fast_commits += s.fast_commits;
        stats.collisions += s.collisions;
        stats.timeouts += s.timeouts;
        stats.classic_redirects += s.classic_redirects;
        in_flight += client.in_flight();
    }
    if std::env::var_os("MDCC_DEBUG").is_some() {
        let mut node_stats = mdcc_core::node::NodeStats::default();
        let mut pending = 0usize;
        for dc_nodes in &matrix {
            for &n in dc_nodes {
                let node = world.get::<StorageNodeProcess>(n).expect("node");
                let s = node.stats();
                node_stats.fast_votes += s.fast_votes;
                node_stats.classic_votes += s.classic_votes;
                node_stats.not_fast_bounces += s.not_fast_bounces;
                node_stats.instance_full += s.instance_full;
                node_stats.recoveries_led += s.recoveries_led;
                node_stats.dangling_resolved += s.dangling_resolved;
                pending += node.store().pending_len();
            }
        }
        eprintln!(
            "[mdcc-debug] nodes: {node_stats:?}, pending_options={pending}, \
             stuck_client_txns={in_flight}, world={:?}",
            world.stats()
        );
    }
    (Report::new(records, spec.warmup, spec.duration), stats)
}

// ---------------------------------------------------------------------
// Quorum writes.
// ---------------------------------------------------------------------

/// Runs a quorum-writes experiment with write quorum `k`.
pub fn run_qw(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
    k: usize,
) -> Report {
    let mut world: World<mdcc_baselines::qw::QwMsg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
        },
    );
    let matrix = storage_matrix(spec);
    let placement = StaticPlacement::new(matrix.clone(), spec.master_policy);
    for dc in 0..spec.dcs {
        for shard in 0..spec.shards_per_dc {
            let store = BaselineStore::new(Arc::clone(&catalog));
            let id = world.spawn(DcId(dc), Box::new(QwStorage::new(store)));
            assert_eq!(id, matrix[dc as usize][shard]);
        }
    }
    for (key, row) in data {
        let shard = placement.shard_of(key);
        for dc_nodes in &matrix {
            world
                .get_mut::<QwStorage>(dc_nodes[shard])
                .expect("storage node")
                .store_mut()
                .load(key.clone(), row.clone());
        }
    }
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let writer = QwWriter::new(placement.clone() as Arc<dyn Placement>, k);
        let workload = workload_factory(i, dc, &placement);
        let client = QwClient::new(writer, placement.clone() as Arc<dyn Placement>, dc, workload);
        client_ids.push(world.spawn(dc, Box::new(client)));
    }
    drive(&mut world, spec);
    let mut records = Vec::new();
    for id in client_ids {
        records.extend(world.get::<QwClient>(id).expect("client").records.iter().copied());
    }
    Report::new(records, spec.warmup, spec.duration)
}

// ---------------------------------------------------------------------
// Two-phase commit.
// ---------------------------------------------------------------------

/// Runs a 2PC experiment.
pub fn run_tpc(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
) -> Report {
    let mut world: World<mdcc_baselines::twopc::TpcMsg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
        },
    );
    let matrix = storage_matrix(spec);
    let placement = StaticPlacement::new(matrix.clone(), spec.master_policy);
    for dc in 0..spec.dcs {
        for shard in 0..spec.shards_per_dc {
            let store = BaselineStore::new(Arc::clone(&catalog));
            let id = world.spawn(DcId(dc), Box::new(TpcStorage::new(store)));
            assert_eq!(id, matrix[dc as usize][shard]);
        }
    }
    for (key, row) in data {
        let shard = placement.shard_of(key);
        for dc_nodes in &matrix {
            world
                .get_mut::<TpcStorage>(dc_nodes[shard])
                .expect("storage node")
                .store_mut()
                .load(key.clone(), row.clone());
        }
    }
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let coord = TpcCoordinator::new(placement.clone() as Arc<dyn Placement>, spec.dcs as usize);
        let workload = workload_factory(i, dc, &placement);
        let client = TpcClient::new(coord, placement.clone() as Arc<dyn Placement>, dc, workload);
        client_ids.push(world.spawn(dc, Box::new(client)));
    }
    drive(&mut world, spec);
    let mut records = Vec::new();
    for id in client_ids {
        records.extend(world.get::<TpcClient>(id).expect("client").records.iter().copied());
    }
    Report::new(records, spec.warmup, spec.duration)
}

// ---------------------------------------------------------------------
// Megastore*.
// ---------------------------------------------------------------------

/// Runs a Megastore* experiment. The master lives in DC 0 (the paper's
/// US-West), data is one entity group, and the caller usually also puts
/// every client in DC 0 (the paper plays in Megastore*'s favour).
pub fn run_megastore(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
) -> (Report, MegaStats) {
    let mut world: World<mdcc_baselines::megastore::MegaMsg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
        },
    );
    // Replicas for DCs 1..n spawn first (ids 0..n-1), master last — then
    // reads in DC 0 go to the master's authoritative store.
    let replica_ids: Vec<NodeId> = (1..spec.dcs)
        .map(|dc| {
            let mut replica = MegaReplica::new(BaselineStore::new(Arc::clone(&catalog)));
            for (key, row) in data {
                replica.store_mut().load(key.clone(), row.clone());
            }
            world.spawn(DcId(dc), Box::new(replica))
        })
        .collect();
    let mut master_store = BaselineStore::new(Arc::clone(&catalog));
    for (key, row) in data {
        master_store.load(key.clone(), row.clone());
    }
    let master = world.spawn(
        DcId(0),
        Box::new(MegaMaster::new(
            master_store,
            replica_ids.clone(),
            spec.protocol.classic_quorum,
        )),
    );
    let mut replicas_by_dc = vec![master];
    replicas_by_dc.extend(replica_ids.iter().copied());
    // Placement is only used by workload factories (e.g. master-locality
    // pools); Megastore* itself is a single entity group.
    let matrix: Vec<Vec<NodeId>> = replicas_by_dc.iter().map(|n| vec![*n]).collect();
    let placement = StaticPlacement::new(matrix, MasterPolicy::FixedDc(DcId(0)));
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let workload = workload_factory(i, dc, &placement);
        let client = MegastoreClient::new(
            mdcc_baselines::megastore::MegaClient::new(master),
            replicas_by_dc.clone(),
            dc,
            workload,
        );
        client_ids.push(world.spawn(dc, Box::new(client)));
    }
    drive(&mut world, spec);
    let mut records = Vec::new();
    for id in client_ids {
        records.extend(
            world
                .get::<MegastoreClient>(id)
                .expect("client")
                .records
                .iter()
                .copied(),
        );
    }
    let stats = world.get::<MegaMaster>(master).expect("master").stats();
    (Report::new(records, spec.warmup, spec.duration), stats)
}

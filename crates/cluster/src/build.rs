//! Cluster builders and experiment runners, one per protocol.

use std::sync::Arc;

use mdcc_baselines::megastore::{MegaMaster, MegaReplica, MegaStats};
use mdcc_baselines::qw::{QwStorage, QwWriter};
use mdcc_baselines::twopc::{TpcCoordinator, TpcStorage};
use mdcc_baselines::BaselineStore;
use mdcc_common::placement::MasterPolicy;
use mdcc_common::{
    DcId, Key, NodeId, Placement, ProtocolConfig, Row, SimDuration, SimTime, StaticPlacement,
};
use mdcc_core::{StorageNodeProcess, TmConfig, TransactionManager, TxnStats};
use mdcc_sim::{presets, NetworkModel, World, WorldConfig};
use mdcc_storage::{Catalog, RecordStore};
use mdcc_trace::{Phase, Span, TraceConfig, TraceHandle};
use mdcc_workloads::Workload;

use crate::clients::{MdccClient, MegastoreClient, QwClient, TpcClient};
use crate::faults::{FaultEvent, FaultPlan};
use crate::metrics::{ClusterAudit, NodeRecovery, Report, RunPerf, TxnRecord};

/// Which network model to deploy on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetKind {
    /// The five EC2 regions of the paper (§5.1).
    Ec2Five,
    /// Uniform inter-DC RTT (tests, controlled experiments).
    Uniform {
        /// Round-trip time between any two data centers, ms.
        rtt_ms: f64,
    },
}

/// Where the emulated browsers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPlacement {
    /// Evenly spread over all data centers (the paper's default).
    Even,
    /// All in one data center (Megastore* and the Figure 8 experiment).
    AllIn(DcId),
}

/// MDCC protocol configuration variants of §5.3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdccMode {
    /// The full protocol: fast ballots plus commutativity (the workload
    /// decides whether updates are commutative).
    Full,
    /// Fast ballots without commutative support — pair with a workload
    /// that emits physical updates.
    Fast,
    /// All instances Multi-Paxos: every proposal goes through the
    /// record's master and fast ballots never reopen.
    Multi,
}

/// Everything that describes one experiment deployment.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// RNG seed (world + workloads).
    pub seed: u64,
    /// Number of data centers.
    pub dcs: u8,
    /// Storage nodes per data center (shards).
    pub shards_per_dc: usize,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Client placement.
    pub client_placement: ClientPlacement,
    /// Default-master assignment.
    pub master_policy: MasterPolicy,
    /// Network model.
    pub net: NetKind,
    /// Lognormal jitter sigma on one-way delays.
    pub jitter: f64,
    /// Probability that any one message is silently lost in transit.
    pub drop_prob: f64,
    /// Override every inter-DC link's bandwidth (bytes/second); `None`
    /// keeps the network model's default (10 Gbit/s). The knob behind
    /// the fig9 WAN-constrained sweep, where vote fan-out actually
    /// congests the directed-link FIFO queues.
    pub inter_dc_bandwidth: Option<f64>,
    /// Fixed floor of the per-message CPU cost at every node.
    pub service_time: SimDuration,
    /// Per-byte handling cost (ns/byte) added on top of the floor — the
    /// serialization component of service time, so a megabyte sync chunk
    /// costs its receiver more than a one-byte vote.
    pub service_ns_per_byte: u64,
    /// Warm-up period excluded from the report.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub duration: SimDuration,
    /// Post-window drain: clients stop issuing at `warmup + duration`
    /// and the world runs this much longer so in-flight and dangling
    /// transactions resolve and replicas converge (recovery audits need
    /// a quiesced cluster). Zero disables draining.
    pub drain: SimDuration,
    /// Data-center outages: `(offset from start, dc)`. Kept alongside
    /// [`ClusterSpec::faults`] for the simple §5.3.4 experiments.
    pub fail_dcs: Vec<(SimDuration, DcId)>,
    /// Scripted crash/restart fault schedule (MDCC runs only).
    pub faults: FaultPlan,
    /// Write-ahead-log every storage-node input to the simulated disk
    /// and checkpoint periodically. Required for `faults` that restart
    /// nodes; off by default because figure runs don't pay for it.
    pub durability: bool,
    /// Simulated fsync latency charged to a node whenever one of its
    /// handlers appended WAL bytes. Only meaningful with `durability`;
    /// `ZERO` — the default — leaves the event schedule byte-identical
    /// to runs predating the observability layer.
    pub wal_fsync: SimDuration,
    /// Deterministic tracing: causal spans, per-link gauges, event-loop
    /// profiling. Off by default; a disabled tracer records nothing and
    /// changes no outcome or wire byte.
    pub trace: TraceConfig,
    /// Run the simulation on the conservative parallel per-DC engine
    /// (one worker thread per data center). Guaranteed byte-identical
    /// to the sequential scheduler for any seed; traced runs always
    /// fall back to sequential.
    pub parallel: bool,
    /// Protocol parameters (quorums, timeouts, γ).
    pub protocol: ProtocolConfig,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self {
            seed: 42,
            dcs: 5,
            shards_per_dc: 2,
            clients: 20,
            client_placement: ClientPlacement::Even,
            master_policy: MasterPolicy::HashedPerRecord,
            net: NetKind::Ec2Five,
            jitter: 0.08,
            drop_prob: 0.0,
            inter_dc_bandwidth: None,
            service_time: SimDuration::from_micros(40),
            service_ns_per_byte: 40,
            warmup: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(60),
            drain: SimDuration::ZERO,
            fail_dcs: Vec::new(),
            faults: FaultPlan::new(),
            durability: false,
            wal_fsync: SimDuration::ZERO,
            trace: TraceConfig::off(),
            parallel: false,
            protocol: ProtocolConfig::default(),
        }
    }
}

/// Builds workloads for each client: `(client index, client dc,
/// placement)`.
pub type WorkloadFactory<'a> =
    dyn FnMut(usize, DcId, &Arc<StaticPlacement>) -> Box<dyn Workload> + 'a;

fn network(spec: &ClusterSpec) -> NetworkModel {
    let model = match spec.net {
        NetKind::Ec2Five => {
            assert_eq!(spec.dcs, 5, "the EC2 preset is a five-region network");
            presets::ec2_five_dc()
        }
        NetKind::Uniform { rtt_ms } => NetworkModel::uniform(spec.dcs as usize, rtt_ms, 1.0),
    };
    let model = match spec.inter_dc_bandwidth {
        Some(bytes_per_sec) => model.with_inter_dc_bandwidth(bytes_per_sec),
        None => model,
    };
    model
        .with_jitter(spec.jitter)
        .with_drop_prob(spec.drop_prob)
}

fn client_dc(spec: &ClusterSpec, i: usize) -> DcId {
    match spec.client_placement {
        ClientPlacement::Even => DcId((i % spec.dcs as usize) as u8),
        ClientPlacement::AllIn(dc) => dc,
    }
}

/// Precomputed storage-node id matrix: ids are dense spawn-order ids, so
/// spawning dc-major yields `id = dc * shards + shard`.
fn storage_matrix(spec: &ClusterSpec) -> Vec<Vec<NodeId>> {
    (0..spec.dcs as u32)
        .map(|dc| {
            (0..spec.shards_per_dc as u32)
                .map(|s| NodeId(dc * spec.shards_per_dc as u32 + s))
                .collect()
        })
        .collect()
}

/// Resolves a fault-plan `(dc, shard)` to its node id, with a clear
/// error for out-of-range plan entries.
fn storage_target(matrix: &[Vec<NodeId>], dc: DcId, shard: usize) -> NodeId {
    let dc_nodes = matrix.get(dc.0 as usize).unwrap_or_else(|| {
        panic!(
            "fault plan names dc{} but the spec has {} DCs",
            dc.0,
            matrix.len()
        )
    });
    *dc_nodes.get(shard).unwrap_or_else(|| {
        panic!(
            "fault plan names shard {shard} in dc{} but the spec has {} shards per DC",
            dc.0,
            dc_nodes.len()
        )
    })
}

/// The merged, time-sorted fault timeline: the scripted plan plus the
/// legacy `fail_dcs` outages.
fn fault_timeline(spec: &ClusterSpec) -> Vec<FaultEvent> {
    let mut timeline: Vec<FaultEvent> = spec.faults.sorted();
    for (offset, dc) in &spec.fail_dcs {
        timeline.push(FaultEvent::FailDc {
            at: *offset,
            dc: *dc,
        });
    }
    timeline.sort_by_key(|e| e.at());
    timeline
}

/// Runs a baseline world through the failure schedule and the full
/// experiment span (warm-up + window, plus optional drain).
///
/// Baselines understand the whole [`FaultPlan`] vocabulary, with one
/// deliberate difference from MDCC: baseline stores have no durability
/// subsystem, so `RestartStorage` *revives* the paused process with its
/// pre-crash memory intact (a generous reading — a real restart would
/// lose everything). `CrashStorage` still drops all inbound traffic and
/// `CrashClient` kills a coordinator permanently — which is exactly the
/// scenario the paper's 2PC comparison hinges on: a dead 2PC
/// coordinator leaves its prepare locks held forever (the classic
/// blocking window), while MDCC's storage-side dangling recovery
/// resolves the orphaned transaction on its own.
fn drive<M: Send + 'static>(
    world: &mut World<M>,
    spec: &ClusterSpec,
    matrix: &[Vec<NodeId>],
    client_ids: &[NodeId],
) {
    let timeline = fault_timeline(spec);
    let end = SimTime::ZERO + spec.warmup + spec.duration + spec.drain;
    for event in timeline {
        world.run_until((SimTime::ZERO + event.at()).min(end));
        match event {
            FaultEvent::FailDc { dc, .. } => world.fail_dc(dc),
            FaultEvent::HealDc { dc, .. } => world.heal_dc(dc),
            FaultEvent::CrashStorage { dc, shard, .. } => {
                world.crash_node(storage_target(matrix, dc, shard));
            }
            FaultEvent::RestartStorage { dc, shard, .. } => {
                world.revive_node(storage_target(matrix, dc, shard));
            }
            FaultEvent::CrashClient { client, .. } => {
                assert!(
                    client < client_ids.len(),
                    "fault plan crashes client {client} but the spec has {} clients",
                    client_ids.len()
                );
                world.crash_node(client_ids[client]);
            }
        }
    }
    world.run_until(end);
}

// ---------------------------------------------------------------------
// MDCC.
// ---------------------------------------------------------------------

/// Runs an MDCC experiment; returns the report and the summed TM stats.
///
/// MDCC runs understand the full [`FaultPlan`]: storage nodes crash
/// (volatile state destroyed, simulated disk preserved), restart (store
/// rebuilt from checkpoint + WAL replay via `mdcc-recovery`, after which
/// the node re-learns in-flight options and drives dangling-transaction
/// resolution), and clients die with their TMs. Set
/// [`ClusterSpec::durability`] for any plan that restarts nodes.
pub fn run_mdcc(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
    mode: MdccMode,
) -> (Report, TxnStats) {
    let wall_start = std::time::Instant::now();
    let mut world: World<mdcc_core::Msg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
            service_ns_per_byte: spec.service_ns_per_byte,
            coalesce: spec.protocol.coalesce,
            coalesce_window: spec.protocol.coalesce_window,
            fsync_latency: spec.wal_fsync,
            group_commit: spec.protocol.group_commit,
            group_commit_window: spec.protocol.group_commit_window,
            group_commit_bytes: spec.protocol.group_commit_bytes,
            parallel: spec.parallel,
        },
    );
    let tracer = TraceHandle::new(spec.trace);
    if spec.trace.enabled {
        world.set_tracer(tracer.clone());
    }
    let matrix = storage_matrix(spec);
    let placement = StaticPlacement::new(matrix.clone(), spec.master_policy);
    let allow_fast = !matches!(mode, MdccMode::Multi);
    // One shared lease-tenure collector across every node, restarted
    // ones included — the no-two-masters audit needs the full history.
    let lease_audit = spec
        .protocol
        .mastership
        .enabled
        .then(mdcc_mastership::LeaseAudit::new);
    for dc in 0..spec.dcs {
        for &expected in &matrix[dc as usize] {
            let store = RecordStore::new(spec.protocol.clone(), Arc::clone(&catalog));
            let mut node = StorageNodeProcess::new(
                spec.protocol.clone(),
                store,
                placement.clone() as Arc<dyn Placement>,
                allow_fast,
            );
            if spec.durability {
                node.enable_durability();
            }
            if spec.trace.enabled {
                node.set_tracer(tracer.clone(), DcId(dc));
            }
            if let Some(audit) = &lease_audit {
                node.set_lease_audit(audit.clone());
            }
            let id = world.spawn(DcId(dc), Box::new(node));
            assert_eq!(id, expected);
        }
    }
    for (key, row) in data {
        let shard = placement.shard_of(key);
        for dc_nodes in &matrix {
            world
                .get_mut::<StorageNodeProcess>(dc_nodes[shard])
                .expect("storage node")
                .store_mut()
                .load(key.clone(), row.clone());
        }
    }
    if spec.durability {
        // Make the initial data distribution durable: each node starts
        // from a checkpoint so a crash before its first periodic
        // checkpoint still recovers the loaded records.
        for dc_nodes in &matrix {
            for &n in dc_nodes {
                let state = world
                    .get::<StorageNodeProcess>(n)
                    .expect("storage node")
                    .store()
                    .export_state();
                let snapshot = mdcc_recovery::to_bytes(&state);
                world.disk_mut(n).install_snapshot(snapshot);
            }
        }
    }
    let end = SimTime::ZERO + spec.warmup + spec.duration;
    let stop_issuing_at = (spec.drain > SimDuration::ZERO).then_some(end);
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let tm = TransactionManager::new(
            TmConfig {
                protocol: spec.protocol.clone(),
                my_dc: dc,
                assume_classic: matches!(mode, MdccMode::Multi),
            },
            placement.clone() as Arc<dyn Placement>,
        );
        let workload = workload_factory(i, dc, &placement);
        let mut client = MdccClient::new(tm, workload);
        if let Some(stop) = stop_issuing_at {
            client.stop_issuing_at(stop);
        }
        if spec.trace.enabled {
            client.set_tracer(tracer.clone());
        }
        client_ids.push(world.spawn(dc, Box::new(client)));
    }

    // Drive through the merged fault timeline: legacy DC outages plus
    // the scripted crash/restart plan.
    let timeline = fault_timeline(spec);
    let mut recoveries: Vec<NodeRecovery> = Vec::new();
    let mut crash_times: std::collections::HashMap<NodeId, SimTime> =
        std::collections::HashMap::new();
    let run_end = end + spec.drain;
    for event in timeline {
        let at = (SimTime::ZERO + event.at()).min(run_end);
        world.run_until(at);
        match event {
            FaultEvent::CrashStorage { dc, shard, .. } => {
                let node = storage_target(&matrix, dc, shard);
                world.crash_node(node);
                crash_times.insert(node, world.now());
            }
            FaultEvent::RestartStorage { dc, shard, .. } => {
                assert!(spec.durability, "restarting nodes requires durability");
                let node = storage_target(&matrix, dc, shard);
                let (store, info) = mdcc_recovery::recover_store(
                    spec.protocol.clone(),
                    Arc::clone(&catalog),
                    world.disk(node),
                )
                .expect("disk state parses: the simulated disk is never torn");
                let mut proc_ = StorageNodeProcess::from_recovery(
                    spec.protocol.clone(),
                    store,
                    placement.clone() as Arc<dyn Placement>,
                    allow_fast,
                    info,
                );
                if let Some(audit) = &lease_audit {
                    proc_.set_lease_audit(audit.clone());
                }
                // Re-install the lease floors and per-record overrides
                // persisted in the WAL tail so the restarted node keeps
                // *fencing* deposed ballots (its own serving rights
                // stay quarantined inside the mastership layer).
                let leases = mdcc_recovery::recovered_leases(world.disk(node))
                    .expect("disk state parses: the simulated disk is never torn");
                proc_.install_recovered_leases(leases);
                if spec.trace.enabled {
                    proc_.set_tracer(tracer.clone(), dc);
                    // Replay is instantaneous in sim time; the span
                    // still marks *when* the node recovered and what
                    // run the replay belonged to.
                    tracer.span(Span {
                        node,
                        dc,
                        phase: Phase::WalReplay,
                        start: world.now(),
                        end: world.now(),
                        txn: None,
                        key: None,
                        class: None,
                    });
                }
                world.restart_node(node, Box::new(proc_));
                recoveries.push(NodeRecovery {
                    node,
                    dc,
                    shard,
                    crashed_at: crash_times.get(&node).copied().unwrap_or(SimTime::ZERO),
                    restarted_at: world.now(),
                    info,
                });
            }
            FaultEvent::CrashClient { client, .. } => {
                assert!(
                    client < client_ids.len(),
                    "fault plan crashes client {client} but the spec has {} clients",
                    client_ids.len()
                );
                world.crash_node(client_ids[client]);
            }
            FaultEvent::FailDc { dc, .. } => world.fail_dc(dc),
            FaultEvent::HealDc { dc, .. } => world.heal_dc(dc),
        }
    }
    world.run_until(run_end);

    let crashed_clients = spec.faults.crashed_clients();
    let mut records: Vec<TxnRecord> = Vec::new();
    let mut stats = TxnStats::default();
    let mut in_flight = 0usize;
    for (i, id) in client_ids.iter().enumerate() {
        let client = world.get::<MdccClient>(*id).expect("client");
        records.extend(client.records.iter().copied());
        let s = client.tm_stats();
        stats.committed += s.committed;
        stats.aborted += s.aborted;
        stats.fast_commits += s.fast_commits;
        stats.collisions += s.collisions;
        stats.timeouts += s.timeouts;
        stats.classic_redirects += s.classic_redirects;
        stats.repair_pulls += s.repair_pulls;
        if !crashed_clients.contains(&i) {
            in_flight += client.in_flight();
        }
    }

    // End-of-run consistency audit across every storage node.
    let mut audit = ClusterAudit::default();
    let mut engine = mdcc_storage::EngineStats::default();
    let mut ms_stats = mdcc_mastership::MastershipStats::default();
    let mut node_stats = mdcc_core::node::NodeStats::default();
    let mut minima: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for dc_nodes in &matrix {
        for &n in dc_nodes {
            let node = world.get::<StorageNodeProcess>(n).expect("node");
            let s = node.stats();
            node_stats.fast_votes += s.fast_votes;
            node_stats.classic_votes += s.classic_votes;
            node_stats.not_fast_bounces += s.not_fast_bounces;
            node_stats.instance_full += s.instance_full;
            node_stats.recoveries_led += s.recoveries_led;
            node_stats.dangling_resolved += s.dangling_resolved;
            audit.dangling_resolved += s.dangling_resolved;
            audit.sync_adoptions += s.sync_adoptions;
            audit.checkpoints += s.checkpoints;
            audit.pending_options += node.store().pending_len();
            let committed = node.store().committed_state();
            audit
                .committed_digests
                .push(mdcc_recovery::committed_state_digest(&committed));
            for (_, _, value) in committed {
                let Some(row) = value else { continue };
                for (attr, v) in row.iter() {
                    if let Some(i) = v.as_int() {
                        minima
                            .entry(attr.to_owned())
                            .and_modify(|m| *m = (*m).min(i))
                            .or_insert(i);
                    }
                }
            }
            audit.wal_bytes_written += world.disk(n).stats().wal_bytes_written;
            if let Some(m) = node.mastership_stats() {
                ms_stats.elections += m.elections;
                ms_stats.leases_acquired += m.leases_acquired;
                ms_stats.renewals += m.renewals;
                ms_stats.handoffs += m.handoffs;
                ms_stats.served += m.served;
                ms_stats.forwarded += m.forwarded;
                ms_stats.phase1_skipped += m.phase1_skipped;
                ms_stats.phase1_covered += m.phase1_covered;
                ms_stats.cold_first_commit_rtts += m.cold_first_commit_rtts;
            }
            let e = node.store().engine_stats();
            engine.live_bytes += e.live_bytes;
            engine.dead_bytes += e.dead_bytes;
            engine.segments += e.segments;
            engine.compactions += e.compactions;
            engine.evictions += e.evictions;
        }
    }
    audit.stuck_clients = in_flight;
    audit.attr_minima = minima.into_iter().collect();
    if std::env::var_os("MDCC_DIVERGE_DEBUG").is_some() {
        eprintln!(
            "[diverge] audit: adoptions={} checkpoints={} dangling={} pending={} rounds={:?}",
            audit.sync_adoptions,
            audit.checkpoints,
            audit.dangling_resolved,
            audit.pending_options,
            matrix
                .iter()
                .flatten()
                .map(|&n| world
                    .get::<StorageNodeProcess>(n)
                    .unwrap()
                    .stats()
                    .sync_rounds)
                .collect::<Vec<_>>()
        );
        // Dump per-key differences between replica 0 of each shard and
        // the others — the microscope for recovery-audit failures.
        for shard in 0..spec.shards_per_dc {
            let reference = matrix[0][shard];
            let ref_state = world
                .get::<StorageNodeProcess>(reference)
                .expect("node")
                .store()
                .committed_state();
            for dc_nodes in &matrix[1..] {
                let n = dc_nodes[shard];
                let state = world
                    .get::<StorageNodeProcess>(n)
                    .expect("node")
                    .store()
                    .committed_state();
                for (a, b) in ref_state.iter().zip(state.iter()) {
                    if a != b {
                        eprintln!(
                            "[diverge] shard {shard}: {reference} has {:?} v{} ; {n} has {:?} v{} (key {})",
                            a.2, a.1 .0, b.2, b.1 .0, a.0
                        );
                    }
                }
            }
        }
    }
    if std::env::var_os("MDCC_DEBUG").is_some() {
        eprintln!(
            "[mdcc-debug] nodes: {node_stats:?}, pending_options={}, \
             stuck_client_txns={in_flight}, world={:?}",
            audit.pending_options,
            world.stats()
        );
    }
    let mut report = Report::new(records, spec.warmup, spec.duration);
    report.recoveries = recoveries;
    report.audit = Some(audit);
    report.net = crate::metrics::NetReport::from_world(world.stats());
    report.perf = RunPerf {
        wall: wall_start.elapsed(),
        events: world.stats().events_handled,
        threads: world.worker_threads(),
    };
    report.profile = world.profile();
    report.engine = engine;
    report.mastership = ms_stats;
    if let Some(audit) = &lease_audit {
        report.lease_spans = audit.spans();
    }
    if spec.trace.enabled {
        report.trace = Some(tracer.take());
    }
    (report, stats)
}

// ---------------------------------------------------------------------
// Quorum writes.
// ---------------------------------------------------------------------

/// Runs a quorum-writes experiment with write quorum `k`.
pub fn run_qw(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
    k: usize,
) -> Report {
    let wall_start = std::time::Instant::now();
    let mut world: World<mdcc_baselines::qw::QwMsg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
            service_ns_per_byte: spec.service_ns_per_byte,
            coalesce: spec.protocol.coalesce,
            coalesce_window: spec.protocol.coalesce_window,
            fsync_latency: spec.wal_fsync,
            group_commit: spec.protocol.group_commit,
            group_commit_window: spec.protocol.group_commit_window,
            group_commit_bytes: spec.protocol.group_commit_bytes,
            parallel: spec.parallel,
        },
    );
    let matrix = storage_matrix(spec);
    let placement = StaticPlacement::new(matrix.clone(), spec.master_policy);
    for dc in 0..spec.dcs {
        for &expected in &matrix[dc as usize] {
            let store = BaselineStore::new(Arc::clone(&catalog));
            let id = world.spawn(DcId(dc), Box::new(QwStorage::new(store)));
            assert_eq!(id, expected);
        }
    }
    for (key, row) in data {
        let shard = placement.shard_of(key);
        for dc_nodes in &matrix {
            world
                .get_mut::<QwStorage>(dc_nodes[shard])
                .expect("storage node")
                .store_mut()
                .load(key.clone(), row.clone());
        }
    }
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let writer = QwWriter::new(placement.clone() as Arc<dyn Placement>, k);
        let workload = workload_factory(i, dc, &placement);
        let client = QwClient::new(
            writer,
            placement.clone() as Arc<dyn Placement>,
            dc,
            workload,
        );
        client_ids.push(world.spawn(dc, Box::new(client)));
    }
    drive(&mut world, spec, &matrix, &client_ids);
    let mut records = Vec::new();
    for id in client_ids {
        records.extend(
            world
                .get::<QwClient>(id)
                .expect("client")
                .records
                .iter()
                .copied(),
        );
    }
    let mut report = Report::new(records, spec.warmup, spec.duration);
    report.net = crate::metrics::NetReport::from_world(world.stats());
    report.perf = RunPerf {
        wall: wall_start.elapsed(),
        events: world.stats().events_handled,
        threads: world.worker_threads(),
    };
    report
}

// ---------------------------------------------------------------------
// Two-phase commit.
// ---------------------------------------------------------------------

/// Runs a 2PC experiment.
pub fn run_tpc(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
) -> Report {
    let wall_start = std::time::Instant::now();
    let mut world: World<mdcc_baselines::twopc::TpcMsg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
            service_ns_per_byte: spec.service_ns_per_byte,
            coalesce: spec.protocol.coalesce,
            coalesce_window: spec.protocol.coalesce_window,
            fsync_latency: spec.wal_fsync,
            group_commit: spec.protocol.group_commit,
            group_commit_window: spec.protocol.group_commit_window,
            group_commit_bytes: spec.protocol.group_commit_bytes,
            parallel: spec.parallel,
        },
    );
    let matrix = storage_matrix(spec);
    let placement = StaticPlacement::new(matrix.clone(), spec.master_policy);
    for dc in 0..spec.dcs {
        for &expected in &matrix[dc as usize] {
            let store = BaselineStore::new(Arc::clone(&catalog));
            let id = world.spawn(DcId(dc), Box::new(TpcStorage::new(store)));
            assert_eq!(id, expected);
        }
    }
    for (key, row) in data {
        let shard = placement.shard_of(key);
        for dc_nodes in &matrix {
            world
                .get_mut::<TpcStorage>(dc_nodes[shard])
                .expect("storage node")
                .store_mut()
                .load(key.clone(), row.clone());
        }
    }
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let coord = TpcCoordinator::new(placement.clone() as Arc<dyn Placement>, spec.dcs as usize);
        let workload = workload_factory(i, dc, &placement);
        let client = TpcClient::new(coord, placement.clone() as Arc<dyn Placement>, dc, workload);
        client_ids.push(world.spawn(dc, Box::new(client)));
    }
    drive(&mut world, spec, &matrix, &client_ids);
    let mut records = Vec::new();
    for id in client_ids {
        records.extend(
            world
                .get::<TpcClient>(id)
                .expect("client")
                .records
                .iter()
                .copied(),
        );
    }
    let mut report = Report::new(records, spec.warmup, spec.duration);
    report.net = crate::metrics::NetReport::from_world(world.stats());
    report.perf = RunPerf {
        wall: wall_start.elapsed(),
        events: world.stats().events_handled,
        threads: world.worker_threads(),
    };
    report
}

// ---------------------------------------------------------------------
// Megastore*.
// ---------------------------------------------------------------------

/// Runs a Megastore* experiment. The master lives in DC 0 (the paper's
/// US-West), data is one entity group, and the caller usually also puts
/// every client in DC 0 (the paper plays in Megastore*'s favour).
pub fn run_megastore(
    spec: &ClusterSpec,
    catalog: Arc<Catalog>,
    data: &[(Key, Row)],
    workload_factory: &mut WorkloadFactory<'_>,
) -> (Report, MegaStats) {
    let wall_start = std::time::Instant::now();
    let mut world: World<mdcc_baselines::megastore::MegaMsg> = World::new(
        network(spec),
        WorldConfig {
            seed: spec.seed,
            service_time: spec.service_time,
            service_ns_per_byte: spec.service_ns_per_byte,
            coalesce: spec.protocol.coalesce,
            coalesce_window: spec.protocol.coalesce_window,
            fsync_latency: spec.wal_fsync,
            group_commit: spec.protocol.group_commit,
            group_commit_window: spec.protocol.group_commit_window,
            group_commit_bytes: spec.protocol.group_commit_bytes,
            parallel: spec.parallel,
        },
    );
    // Replicas for DCs 1..n spawn first (ids 0..n-1), master last — then
    // reads in DC 0 go to the master's authoritative store.
    let replica_ids: Vec<NodeId> = (1..spec.dcs)
        .map(|dc| {
            let mut replica = MegaReplica::new(BaselineStore::new(Arc::clone(&catalog)));
            for (key, row) in data {
                replica.store_mut().load(key.clone(), row.clone());
            }
            world.spawn(DcId(dc), Box::new(replica))
        })
        .collect();
    let mut master_store = BaselineStore::new(Arc::clone(&catalog));
    for (key, row) in data {
        master_store.load(key.clone(), row.clone());
    }
    let master = world.spawn(
        DcId(0),
        Box::new(MegaMaster::new(
            master_store,
            replica_ids.clone(),
            spec.protocol.classic_quorum,
        )),
    );
    let mut replicas_by_dc = vec![master];
    replicas_by_dc.extend(replica_ids.iter().copied());
    // Placement is only used by workload factories (e.g. master-locality
    // pools); Megastore* itself is a single entity group.
    let matrix: Vec<Vec<NodeId>> = replicas_by_dc.iter().map(|n| vec![*n]).collect();
    let placement = StaticPlacement::new(matrix.clone(), MasterPolicy::FixedDc(DcId(0)));
    let mut client_ids = Vec::with_capacity(spec.clients);
    for i in 0..spec.clients {
        let dc = client_dc(spec, i);
        let workload = workload_factory(i, dc, &placement);
        let client = MegastoreClient::new(
            mdcc_baselines::megastore::MegaClient::new(master),
            replicas_by_dc.clone(),
            dc,
            workload,
        );
        client_ids.push(world.spawn(dc, Box::new(client)));
    }
    drive(&mut world, spec, &matrix, &client_ids);
    let mut records = Vec::new();
    for id in client_ids {
        records.extend(
            world
                .get::<MegastoreClient>(id)
                .expect("client")
                .records
                .iter()
                .copied(),
        );
    }
    let stats = world.get::<MegaMaster>(master).expect("master").stats();
    let mut report = Report::new(records, spec.warmup, spec.duration);
    report.net = crate::metrics::NetReport::from_world(world.stats());
    report.perf = RunPerf {
        wall: wall_start.elapsed(),
        events: world.stats().events_handled,
        threads: world.worker_threads(),
    };
    (report, stats)
}

//! Closed-loop workload clients, one flavour per protocol.
//!
//! Every client embeds the same loop — draw a transaction from the
//! workload, run its (local) read phase, build the write-set, commit it
//! through the protocol, record the outcome, repeat — mirroring the
//! paper's emulated browsers with no think time.

use std::collections::HashMap;
use std::sync::Arc;

use mdcc_baselines::megastore::{MegaClient, MegaMsg};
use mdcc_baselines::qw::{QwMsg, QwWriter};
use mdcc_baselines::twopc::{TpcCoordinator, TpcMsg};
use mdcc_common::{DcId, Key, NodeId, Placement, Row, SimTime, TxnId, Version};
use mdcc_core::{Msg, ReadConsistency, TmEvent, TransactionManager, TxnStats};
use mdcc_paxos::TxnOutcome;
use mdcc_sim::{Ctx, Process};
use mdcc_trace::TraceHandle;
use mdcc_workloads::{Transaction, TxnAction, Workload};

use crate::metrics::TxnRecord;

/// In-progress read batch: `(request id, responses needed, collected
/// values)`.
type ReadWait = Option<(u64, usize, Vec<(Key, Version, Option<Row>)>)>;

// ---------------------------------------------------------------------
// MDCC client.
// ---------------------------------------------------------------------

/// An app server running the MDCC DB library plus an emulated browser.
pub struct MdccClient {
    tm: TransactionManager,
    workload: Box<dyn Workload>,
    current: Option<Box<dyn Transaction>>,
    started: SimTime,
    pending_read: Option<u64>,
    /// Stop issuing new transactions at this time (drain phase: lets the
    /// cluster quiesce so recovery audits compare converged replicas).
    stop_at: Option<SimTime>,
    /// Finished transactions (harvested by the harness).
    pub records: Vec<TxnRecord>,
}

impl MdccClient {
    /// Creates a client; the TM must be configured for this client's DC.
    pub fn new(tm: TransactionManager, workload: Box<dyn Workload>) -> Self {
        Self {
            tm,
            workload,
            current: None,
            started: SimTime::ZERO,
            pending_read: None,
            stop_at: None,
            records: Vec::new(),
        }
    }

    /// The closed loop stops issuing new transactions at `stop`
    /// (in-flight ones still run to completion).
    pub fn stop_issuing_at(&mut self, stop: SimTime) {
        self.stop_at = Some(stop);
    }

    /// Attaches the run's trace collector (forwarded to the embedded
    /// transaction manager, which owns the per-txn protocol spans).
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tm.set_tracer(tracer);
    }

    /// Aggregated TM counters.
    pub fn tm_stats(&self) -> TxnStats {
        self.tm.stats()
    }

    /// Commit attempts still unresolved (should be ≤ 1 per closed-loop
    /// client; more indicates a stuck protocol path).
    pub fn in_flight(&self) -> usize {
        self.tm.in_flight()
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.stop_at.is_some_and(|stop| ctx.now >= stop) {
            return;
        }
        let txn = self.workload.next_txn_at(ctx.now, ctx.rng);
        self.started = ctx.now;
        let reads = txn.read_set();
        self.current = Some(txn);
        if reads.is_empty() {
            self.after_reads(Vec::new(), ctx);
        } else {
            self.pending_read = Some(self.tm.read(reads, ReadConsistency::Local, ctx));
        }
    }

    fn after_reads(&mut self, values: Vec<(Key, Version, Option<Row>)>, ctx: &mut Ctx<'_, Msg>) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        match txn.decide(&values) {
            TxnAction::ClientAbort => {
                self.finish(false, ctx.now);
                self.issue(ctx);
            }
            TxnAction::Commit(updates) if updates.is_empty() => {
                self.finish(true, ctx.now);
                self.issue(ctx);
            }
            TxnAction::Commit(updates) => {
                let (_, done) = self.tm.commit(updates, ctx);
                if let Some(done) = done {
                    self.finish(done.outcome == TxnOutcome::Committed, ctx.now);
                    self.issue(ctx);
                }
            }
        }
    }

    fn finish(&mut self, committed: bool, now: SimTime) {
        let txn = self.current.take().expect("active transaction");
        self.records.push(TxnRecord {
            started: self.started,
            finished: now,
            committed,
            is_write: txn.is_write(),
            label: txn.label(),
        });
    }

    fn handle_events(&mut self, events: Vec<TmEvent>, ctx: &mut Ctx<'_, Msg>) {
        for event in events {
            match event {
                TmEvent::Completed(c) => {
                    self.finish(c.outcome == TxnOutcome::Committed, ctx.now);
                    self.issue(ctx);
                }
                TmEvent::ReadDone { token, values } => {
                    if self.pending_read == Some(token) {
                        self.pending_read = None;
                        self.after_reads(values, ctx);
                    }
                }
            }
        }
    }
}

impl Process<Msg> for MdccClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.issue(ctx);
    }
    fn on_message(&mut self, from: NodeId, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let events = self.tm.on_message(from, msg, ctx);
        self.handle_events(events, ctx);
    }
    fn on_timer(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let events = self.tm.on_timer(msg, ctx);
        self.handle_events(events, ctx);
    }
}

// ---------------------------------------------------------------------
// Quorum-writes client.
// ---------------------------------------------------------------------

/// A client of the eventually consistent quorum-writes deployment.
pub struct QwClient {
    writer: QwWriter,
    placement: Arc<dyn Placement>,
    my_dc: DcId,
    workload: Box<dyn Workload>,
    current: Option<Box<dyn Transaction>>,
    started: SimTime,
    next_read: u64,
    read_wait: ReadWait,
    write_wait: Option<u64>,
    /// Finished transactions.
    pub records: Vec<TxnRecord>,
}

impl QwClient {
    /// Creates a client writing through `writer`.
    pub fn new(
        writer: QwWriter,
        placement: Arc<dyn Placement>,
        my_dc: DcId,
        workload: Box<dyn Workload>,
    ) -> Self {
        Self {
            writer,
            placement,
            my_dc,
            workload,
            current: None,
            started: SimTime::ZERO,
            next_read: 0,
            read_wait: None,
            write_wait: None,
            records: Vec::new(),
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, QwMsg>) {
        let txn = self.workload.next_txn_at(ctx.now, ctx.rng);
        self.started = ctx.now;
        let reads = txn.read_set();
        self.current = Some(txn);
        if reads.is_empty() {
            self.after_reads(Vec::new(), ctx);
            return;
        }
        let req = self.next_read;
        self.next_read += 1;
        for key in &reads {
            let node = self.placement.replica_in(key, self.my_dc);
            ctx.send(
                node,
                QwMsg::ReadReq {
                    req,
                    key: key.clone(),
                },
            );
        }
        self.read_wait = Some((req, reads.len(), Vec::new()));
    }

    fn after_reads(&mut self, values: Vec<(Key, Version, Option<Row>)>, ctx: &mut Ctx<'_, QwMsg>) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        match txn.decide(&values) {
            TxnAction::ClientAbort => {
                self.finish(false, ctx.now);
                self.issue(ctx);
            }
            TxnAction::Commit(updates) => {
                let (req, done) = self.writer.write(updates, ctx);
                if done.is_some() {
                    self.finish(true, ctx.now);
                    self.issue(ctx);
                } else {
                    self.write_wait = Some(req);
                }
            }
        }
    }

    fn finish(&mut self, committed: bool, now: SimTime) {
        let txn = self.current.take().expect("active transaction");
        self.records.push(TxnRecord {
            started: self.started,
            finished: now,
            committed,
            is_write: txn.is_write(),
            label: txn.label(),
        });
    }
}

impl Process<QwMsg> for QwClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, QwMsg>) {
        self.issue(ctx);
    }
    fn on_message(&mut self, _from: NodeId, msg: QwMsg, ctx: &mut Ctx<'_, QwMsg>) {
        match msg {
            QwMsg::ReadResp {
                req,
                key,
                version,
                value,
            } => {
                let Some((want, needed, values)) = &mut self.read_wait else {
                    return;
                };
                if *want != req {
                    return;
                }
                values.push((key, version, value));
                if values.len() == *needed {
                    let (_, _, values) = self.read_wait.take().expect("present");
                    self.after_reads(values, ctx);
                }
            }
            QwMsg::PutAck { req, key } => {
                if self.write_wait == Some(req) {
                    if self.writer.on_ack(req, key).is_some() {
                        self.write_wait = None;
                        self.finish(true, ctx.now);
                        self.issue(ctx);
                    }
                } else {
                    // Straggler ack for an already-finished batch.
                    let _ = self.writer.on_ack(req, key);
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Two-phase-commit client.
// ---------------------------------------------------------------------

/// A client running transactions through the 2PC coordinator.
pub struct TpcClient {
    coord: TpcCoordinator,
    placement: Arc<dyn Placement>,
    my_dc: DcId,
    workload: Box<dyn Workload>,
    current: Option<Box<dyn Transaction>>,
    started: SimTime,
    next_read: u64,
    read_wait: ReadWait,
    /// Finished transactions.
    pub records: Vec<TxnRecord>,
}

impl TpcClient {
    /// Creates a 2PC client.
    pub fn new(
        coord: TpcCoordinator,
        placement: Arc<dyn Placement>,
        my_dc: DcId,
        workload: Box<dyn Workload>,
    ) -> Self {
        Self {
            coord,
            placement,
            my_dc,
            workload,
            current: None,
            started: SimTime::ZERO,
            next_read: 0,
            read_wait: None,
            records: Vec::new(),
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, TpcMsg>) {
        let txn = self.workload.next_txn_at(ctx.now, ctx.rng);
        self.started = ctx.now;
        let reads = txn.read_set();
        self.current = Some(txn);
        if reads.is_empty() {
            self.after_reads(Vec::new(), ctx);
            return;
        }
        let req = self.next_read;
        self.next_read += 1;
        for key in &reads {
            let node = self.placement.replica_in(key, self.my_dc);
            ctx.send(
                node,
                TpcMsg::ReadReq {
                    req,
                    key: key.clone(),
                },
            );
        }
        self.read_wait = Some((req, reads.len(), Vec::new()));
    }

    fn after_reads(&mut self, values: Vec<(Key, Version, Option<Row>)>, ctx: &mut Ctx<'_, TpcMsg>) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        match txn.decide(&values) {
            TxnAction::ClientAbort => {
                self.finish(false, ctx.now);
                self.issue(ctx);
            }
            TxnAction::Commit(updates) => {
                let (_, done) = self.coord.commit(updates, ctx);
                if let Some(done) = done {
                    self.finish(done.committed, ctx.now);
                    self.issue(ctx);
                }
            }
        }
    }

    fn finish(&mut self, committed: bool, now: SimTime) {
        let txn = self.current.take().expect("active transaction");
        self.records.push(TxnRecord {
            started: self.started,
            finished: now,
            committed,
            is_write: txn.is_write(),
            label: txn.label(),
        });
    }
}

impl Process<TpcMsg> for TpcClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TpcMsg>) {
        self.issue(ctx);
    }
    fn on_message(&mut self, _from: NodeId, msg: TpcMsg, ctx: &mut Ctx<'_, TpcMsg>) {
        if let TpcMsg::ReadResp {
            req,
            key,
            version,
            value,
        } = msg
        {
            let Some((want, needed, values)) = &mut self.read_wait else {
                return;
            };
            if *want != req {
                return;
            }
            values.push((key, version, value));
            if values.len() == *needed {
                let (_, _, values) = self.read_wait.take().expect("present");
                self.after_reads(values, ctx);
            }
            return;
        }
        if let Some(done) = self.coord.on_message(msg, ctx) {
            self.finish(done.committed, ctx.now);
            self.issue(ctx);
        }
    }
}

// ---------------------------------------------------------------------
// Megastore* client.
// ---------------------------------------------------------------------

/// A client of the Megastore* deployment (co-located with the master).
pub struct MegastoreClient {
    mega: MegaClient,
    /// One log replica per DC, indexed by DcId (reads go local).
    replicas_by_dc: Vec<NodeId>,
    my_dc: DcId,
    workload: Box<dyn Workload>,
    current: Option<Box<dyn Transaction>>,
    started: SimTime,
    next_read: u64,
    read_wait: ReadWait,
    pending_txn: Option<TxnId>,
    /// Finished transactions.
    pub records: Vec<TxnRecord>,
}

impl MegastoreClient {
    /// Creates a Megastore* client.
    pub fn new(
        mega: MegaClient,
        replicas_by_dc: Vec<NodeId>,
        my_dc: DcId,
        workload: Box<dyn Workload>,
    ) -> Self {
        Self {
            mega,
            replicas_by_dc,
            my_dc,
            workload,
            current: None,
            started: SimTime::ZERO,
            next_read: 0,
            read_wait: None,
            pending_txn: None,
            records: Vec::new(),
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, MegaMsg>) {
        let txn = self.workload.next_txn_at(ctx.now, ctx.rng);
        self.started = ctx.now;
        let reads = txn.read_set();
        self.current = Some(txn);
        if reads.is_empty() {
            self.after_reads(Vec::new(), ctx);
            return;
        }
        let req = self.next_read;
        self.next_read += 1;
        let node = self.replicas_by_dc[self.my_dc.0 as usize];
        for key in &reads {
            ctx.send(
                node,
                MegaMsg::ReadReq {
                    req,
                    key: key.clone(),
                },
            );
        }
        self.read_wait = Some((req, reads.len(), Vec::new()));
    }

    fn after_reads(
        &mut self,
        values: Vec<(Key, Version, Option<Row>)>,
        ctx: &mut Ctx<'_, MegaMsg>,
    ) {
        let Some(txn) = self.current.as_mut() else {
            return;
        };
        match txn.decide(&values) {
            TxnAction::ClientAbort => {
                self.finish(false, ctx.now);
                self.issue(ctx);
            }
            TxnAction::Commit(updates) => {
                let read_versions = values.iter().map(|(k, v, _)| (k.clone(), *v)).collect();
                let (txn_id, done) = self.mega.commit(updates, read_versions, ctx);
                if let Some(done) = done {
                    self.finish(done.committed, ctx.now);
                    self.issue(ctx);
                } else {
                    self.pending_txn = Some(txn_id);
                }
            }
        }
    }

    fn finish(&mut self, committed: bool, now: SimTime) {
        let txn = self.current.take().expect("active transaction");
        self.records.push(TxnRecord {
            started: self.started,
            finished: now,
            committed,
            is_write: txn.is_write(),
            label: txn.label(),
        });
    }
}

impl Process<MegaMsg> for MegastoreClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, MegaMsg>) {
        self.issue(ctx);
    }
    fn on_message(&mut self, _from: NodeId, msg: MegaMsg, ctx: &mut Ctx<'_, MegaMsg>) {
        if let MegaMsg::ReadResp {
            req,
            key,
            version,
            value,
        } = &msg
        {
            let Some((want, needed, values)) = &mut self.read_wait else {
                return;
            };
            if want != req {
                return;
            }
            values.push((key.clone(), *version, value.clone()));
            if values.len() == *needed {
                let (_, _, values) = self.read_wait.take().expect("present");
                self.after_reads(values, ctx);
            }
            return;
        }
        if let Some(done) = self.mega.on_message(&msg) {
            if self.pending_txn == Some(done.txn) {
                self.pending_txn = None;
                self.finish(done.committed, ctx.now);
                self.issue(ctx);
            }
        }
    }
}

/// Helper: read results keyed for lookups in tests.
pub fn reads_as_map(
    values: &[(Key, Version, Option<Row>)],
) -> HashMap<Key, (Version, Option<Row>)> {
    values
        .iter()
        .map(|(k, v, r)| (k.clone(), (*v, r.clone())))
        .collect()
}

//! Fault schedules: scripted crash/restart/outage events for one run.
//!
//! A [`FaultPlan`] upgrades the chaos story from "lossy links" to "nodes
//! die and come back": storage nodes crash (volatile state destroyed,
//! disk preserved), restart (store rebuilt from checkpoint + WAL
//! replay), clients die taking their transaction managers with them, and
//! whole data centers brown out — all at scripted simulation times, so
//! every run is reproducible.

use mdcc_common::{DcId, SimDuration};

/// One scripted fault. Times are offsets from simulation start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash the storage node of `shard` in `dc`: volatile state is
    /// destroyed, inbound messages drop, timers die; the disk survives.
    CrashStorage {
        /// When the crash happens.
        at: SimDuration,
        /// Data center of the victim.
        dc: DcId,
        /// Shard index of the victim within the data center.
        shard: usize,
    },
    /// Restart a previously crashed storage node: its store is rebuilt
    /// from its disk (checkpoint + WAL replay) and the fresh process
    /// drives dangling-transaction resolution and peer sync.
    RestartStorage {
        /// When the restart happens.
        at: SimDuration,
        /// Data center of the node.
        dc: DcId,
        /// Shard index within the data center.
        shard: usize,
    },
    /// Crash a client (app server) permanently: its transaction manager
    /// dies with whatever transactions were in flight — the scenario
    /// §3.2.3's dangling-transaction recovery exists for.
    CrashClient {
        /// When the crash happens.
        at: SimDuration,
        /// Index of the client in spawn order.
        client: usize,
    },
    /// Data-center outage (§5.3.4): nodes in `dc` stop receiving.
    FailDc {
        /// When the outage starts.
        at: SimDuration,
        /// The failed data center.
        dc: DcId,
    },
    /// End of a data-center outage.
    HealDc {
        /// When the outage ends.
        at: SimDuration,
        /// The healed data center.
        dc: DcId,
    },
}

impl FaultEvent {
    /// The event's scheduled offset.
    pub fn at(&self) -> SimDuration {
        match self {
            FaultEvent::CrashStorage { at, .. }
            | FaultEvent::RestartStorage { at, .. }
            | FaultEvent::CrashClient { at, .. }
            | FaultEvent::FailDc { at, .. }
            | FaultEvent::HealDc { at, .. } => *at,
        }
    }
}

/// A scripted fault schedule for one experiment run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted events (sorted by time before execution).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style event addition.
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Convenience: crash `(dc, shard)` at `at` and restart it
    /// `down_for` later.
    pub fn crash_restart(
        self,
        dc: DcId,
        shard: usize,
        at: SimDuration,
        down_for: SimDuration,
    ) -> Self {
        self.with(FaultEvent::CrashStorage { at, dc, shard })
            .with(FaultEvent::RestartStorage {
                at: at + down_for,
                dc,
                shard,
            })
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events sorted by time (stable: simultaneous events keep
    /// insertion order).
    pub fn sorted(&self) -> Vec<FaultEvent> {
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.at());
        events
    }

    /// Every `(dc, shard)` that is crash-restarted by this plan.
    pub fn restarted_storage(&self) -> Vec<(DcId, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::RestartStorage { dc, shard, .. } => Some((*dc, *shard)),
                _ => None,
            })
            .collect()
    }

    /// Every client index crashed by this plan.
    pub fn crashed_clients(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::CrashClient { client, .. } => Some(*client),
                _ => None,
            })
            .collect()
    }
}

impl std::ops::Add<SimDuration> for FaultPlan {
    type Output = FaultPlan;
    /// Shifts every event later by `offset`.
    fn add(mut self, offset: SimDuration) -> FaultPlan {
        for event in &mut self.events {
            match event {
                FaultEvent::CrashStorage { at, .. }
                | FaultEvent::RestartStorage { at, .. }
                | FaultEvent::CrashClient { at, .. }
                | FaultEvent::FailDc { at, .. }
                | FaultEvent::HealDc { at, .. } => *at += offset,
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_summarizes() {
        let plan = FaultPlan::new()
            .crash_restart(
                DcId(2),
                0,
                SimDuration::from_secs(10),
                SimDuration::from_secs(5),
            )
            .with(FaultEvent::CrashClient {
                at: SimDuration::from_secs(3),
                client: 4,
            });
        assert_eq!(plan.events.len(), 3);
        let sorted = plan.sorted();
        assert_eq!(sorted[0].at(), SimDuration::from_secs(3));
        assert_eq!(sorted[2].at(), SimDuration::from_secs(15));
        assert_eq!(plan.restarted_storage(), vec![(DcId(2), 0)]);
        assert_eq!(plan.crashed_clients(), vec![4]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn time_shift_moves_every_event() {
        let plan = FaultPlan::new().crash_restart(
            DcId(1),
            0,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        ) + SimDuration::from_secs(10);
        assert_eq!(plan.sorted()[0].at(), SimDuration::from_secs(11));
        assert_eq!(plan.sorted()[1].at(), SimDuration::from_secs(12));
    }
}

//! Deterministic tracing and latency anatomy.
//!
//! The simulator can only answer "how long did this commit take?" —
//! this crate answers *where the time went*. Protocol code (TM, paxos
//! leaders, storage nodes) and the transport record [`Span`]s — keyed
//! by transaction, record and [`Phase`], stamped with virtual sim time —
//! into a shared [`TraceHandle`]. A finished run harvests a
//! [`TraceData`] which feeds two consumers:
//!
//! * [`TraceData::anatomy`] — per-phase p50/p95/p99 latency tables
//!   printed by the fig drivers and tabulated in EXPERIMENTS.md;
//! * [`TraceData::to_chrome_json`] — a Chrome-trace/Perfetto JSON
//!   timeline (`chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Tracing is strictly *observational*: recording a span never touches
//! the RNG, never schedules an event and never changes a wire byte, so
//! a traced run is outcome- and byte-identical to an untraced one (the
//! cluster test-suite enforces this). Timestamps are virtual sim time,
//! so the exported JSON is a pure function of the seed: same seed ⇒
//! byte-identical trace.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use mdcc_common::{DcId, Key, NodeId, SimDuration, SimTime, TxnId};

// ---------------------------------------------------------------------
// Config.
// ---------------------------------------------------------------------

/// Tracing knobs. Default is the hard off-switch: no span is recorded,
/// no per-event branch beyond one `bool` test runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off ⇒ every record call is a no-op.
    pub enabled: bool,
    /// Keep protocol spans for 1-in-`sample` transactions (keyed on the
    /// coordinator-local txn sequence number, so sampling is
    /// deterministic and seed-stable). `1` traces every transaction.
    /// Transport and WAL spans are not txn-sampled; they are bounded by
    /// message volume and always kept while tracing is on.
    pub sample: u64,
    /// Also collect host wall-clock per-process profiles (the only
    /// non-deterministic output; kept out of the exported JSON).
    pub profile: bool,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub const fn off() -> Self {
        Self {
            enabled: false,
            sample: 1,
            profile: false,
        }
    }

    /// Trace every transaction, no host profiling.
    pub const fn on() -> Self {
        Self {
            enabled: true,
            sample: 1,
            profile: false,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

// ---------------------------------------------------------------------
// Phases.
// ---------------------------------------------------------------------

/// What a span measures. Protocol phases mirror the paper's commit
/// anatomy; `Net*` phases decompose one message's life on the wire;
/// `Wal*` phases cover durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Classic Phase1a → quorum of Phase1b (ballot acquisition).
    Phase1,
    /// Classic Phase2a broadcast → leader observes the instance decided.
    Phase2a,
    /// Proposal fan-out → quorum of learned votes at the TM, per record.
    Phase2b,
    /// End-to-end commit attempt at the coordinating TM.
    Commit,
    /// Commit decision → visibility application at the last replica.
    Visibility,
    /// Synchronous WAL flush charged on a durable append.
    WalFsync,
    /// WAL scan + replay during node restart.
    WalReplay,
    /// Message waits in the sender-side per-link FIFO.
    NetQueue,
    /// Message occupies the link (serialization at link bandwidth).
    NetTransmit,
    /// Delivered message waits for a busy receiver, then is serviced
    /// (per-byte deserialization + handler floor).
    NetService,
}

impl Phase {
    /// Stable display order for anatomy tables.
    pub const ALL: [Phase; 10] = [
        Phase::Phase1,
        Phase::Phase2a,
        Phase::Phase2b,
        Phase::Commit,
        Phase::Visibility,
        Phase::WalFsync,
        Phase::WalReplay,
        Phase::NetQueue,
        Phase::NetTransmit,
        Phase::NetService,
    ];

    /// Lower-case name used in anatomy tables and trace JSON.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Phase1 => "phase1",
            Phase::Phase2a => "phase2a",
            Phase::Phase2b => "phase2b",
            Phase::Commit => "commit",
            Phase::Visibility => "visibility",
            Phase::WalFsync => "wal_fsync",
            Phase::WalReplay => "wal_replay",
            Phase::NetQueue => "net_queue",
            Phase::NetTransmit => "net_transmit",
            Phase::NetService => "net_service",
        }
    }

    /// Chrome-trace category.
    const fn category(self) -> &'static str {
        match self {
            Phase::Phase1 | Phase::Phase2a | Phase::Phase2b | Phase::Commit | Phase::Visibility => {
                "protocol"
            }
            Phase::WalFsync | Phase::WalReplay => "wal",
            Phase::NetQueue | Phase::NetTransmit | Phase::NetService => "net",
        }
    }
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

/// A closed interval of virtual time attributed to one [`Phase`] on one
/// node, optionally keyed by transaction / record / traffic class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Node the span is attributed to (Chrome `tid`).
    pub node: NodeId,
    /// Data center of that node (Chrome `pid`).
    pub dc: DcId,
    /// What this interval measures.
    pub phase: Phase,
    /// Start, virtual time.
    pub start: SimTime,
    /// End, virtual time (`end >= start`).
    pub end: SimTime,
    /// Transaction the span belongs to, when one is in scope.
    pub txn: Option<TxnId>,
    /// Record the span belongs to (per-record phases).
    pub key: Option<Key>,
    /// Traffic-class label for `Net*` spans ("protocol", "read", …).
    pub class: Option<&'static str>,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// One sample of a Chrome counter track (per-link backlog gauges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Counter track name, e.g. `link dc0->dc3`.
    pub name: &'static str,
    /// Source/destination pair the sample belongs to.
    pub from: DcId,
    /// Destination data center.
    pub to: DcId,
    /// Sample time.
    pub at: SimTime,
    /// Backlog on the directed link at `at`, in µs of transmission time.
    pub backlog_us: u64,
}

#[derive(Debug, Clone)]
struct OpenSpan {
    dc: DcId,
    start: SimTime,
    end: SimTime,
    /// `extend`ed spans close at harvest; merely `begin`-but-never-ended
    /// spans (aborted / in-flight at drain) are dropped.
    closable: bool,
}

/// Identity of an open span: the owning node plus (txn, record, phase).
/// `key = None` covers txn-wide phases like `Commit`; `txn = None` covers
/// leader-side ballot phases, which exist per (node, record) instead.
type SpanKey = (NodeId, Option<TxnId>, Option<Key>, Phase);

// ---------------------------------------------------------------------
// Collector & handle.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Collector {
    cfg: TraceConfig,
    spans: Vec<Span>,
    counters: Vec<CounterSample>,
    open: HashMap<SpanKey, OpenSpan>,
}

/// Shared, cloneable handle to one run's trace collector.
///
/// The world, every TM and every storage node hold clones of the same
/// handle and append to one span stream. The collector sits behind an
/// `Arc<Mutex<…>>` so the handle is `Send` — the parallel per-DC runner
/// moves worlds across worker threads — but traced runs always use the
/// sequential scheduler, so the lock is never contended in practice.
#[derive(Debug, Clone)]
pub struct TraceHandle(Arc<Mutex<Collector>>);

impl TraceHandle {
    /// Creates a collector for one run.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceHandle(Arc::new(Mutex::new(Collector {
            cfg,
            spans: Vec::new(),
            counters: Vec::new(),
            open: HashMap::new(),
        })))
    }

    /// The configuration the collector was created with.
    pub fn config(&self) -> TraceConfig {
        self.0.lock().unwrap().cfg
    }

    /// Whether any recording happens at all.
    pub fn enabled(&self) -> bool {
        self.0.lock().unwrap().cfg.enabled
    }

    /// Whether the host-wall-clock profiler is requested.
    pub fn profile(&self) -> bool {
        let cfg = self.0.lock().unwrap().cfg;
        cfg.enabled && cfg.profile
    }

    /// Deterministic 1-in-`sample` filter for txn-keyed protocol spans;
    /// spans with no transaction in scope are kept whenever tracing is on.
    pub fn sampled(&self, txn: Option<TxnId>) -> bool {
        let cfg = self.0.lock().unwrap().cfg;
        cfg.enabled && txn.map(|t| t.seq % cfg.sample.max(1) == 0).unwrap_or(true)
    }

    /// Opens a span; first start wins (re-begins on retries are no-ops,
    /// so a span covers the whole retry sequence).
    pub fn begin(
        &self,
        node: NodeId,
        dc: DcId,
        txn: Option<TxnId>,
        key: Option<Key>,
        phase: Phase,
        at: SimTime,
    ) {
        if !self.sampled(txn) {
            return;
        }
        self.0
            .lock()
            .unwrap()
            .open
            .entry((node, txn, key, phase))
            .or_insert(OpenSpan {
                dc,
                start: at,
                end: at,
                closable: false,
            });
    }

    /// Closes a span and emits it. Unmatched ends are ignored.
    pub fn end(
        &self,
        node: NodeId,
        txn: Option<TxnId>,
        key: Option<Key>,
        phase: Phase,
        at: SimTime,
    ) {
        if !self.sampled(txn) {
            return;
        }
        let mut c = self.0.lock().unwrap();
        if let Some(open) = c.open.remove(&(node, txn, key.clone(), phase)) {
            c.spans.push(Span {
                node,
                dc: open.dc,
                phase,
                start: open.start,
                end: at.max(open.start),
                txn,
                key,
                class: None,
            });
        }
    }

    /// Pushes a span's end time outward without closing it (visibility
    /// fan-out: each replica application extends; harvest closes at the
    /// last one). Extended spans survive harvest even if never `end`ed.
    pub fn extend(
        &self,
        node: NodeId,
        txn: Option<TxnId>,
        key: Option<Key>,
        phase: Phase,
        at: SimTime,
    ) {
        if !self.sampled(txn) {
            return;
        }
        let mut c = self.0.lock().unwrap();
        if let Some(open) = c.open.get_mut(&(node, txn, key, phase)) {
            open.end = open.end.max(at);
            open.closable = true;
        }
    }

    /// Records an already-closed span directly (transport / WAL spans
    /// whose bounds are known at record time).
    pub fn span(&self, span: Span) {
        let mut c = self.0.lock().unwrap();
        if !c.cfg.enabled {
            return;
        }
        c.spans.push(span);
    }

    /// Records one sample of a per-link backlog gauge.
    pub fn counter(&self, sample: CounterSample) {
        let mut c = self.0.lock().unwrap();
        if !c.cfg.enabled {
            return;
        }
        c.counters.push(sample);
    }

    /// Harvests the run's trace: closes `extend`ed spans at their last
    /// observed end, drops never-extended opens (in-flight at drain),
    /// and returns everything deterministically sorted.
    pub fn take(&self) -> TraceData {
        let mut c = self.0.lock().unwrap();
        let open = std::mem::take(&mut c.open);
        let mut closable: Vec<(SpanKey, OpenSpan)> =
            open.into_iter().filter(|(_, o)| o.closable).collect();
        // HashMap drain order is unspecified; sort by identity first.
        closable.sort_by(|a, b| a.0.cmp(&b.0));
        for ((node, txn, key, phase), o) in closable {
            c.spans.push(Span {
                node,
                dc: o.dc,
                phase,
                start: o.start,
                end: o.end,
                txn,
                key,
                class: None,
            });
        }
        let mut spans = std::mem::take(&mut c.spans);
        spans.sort_by(|a, b| {
            (a.start, a.end, a.phase, a.node, &a.txn, &a.key)
                .cmp(&(b.start, b.end, b.phase, b.node, &b.txn, &b.key))
        });
        let mut counters = std::mem::take(&mut c.counters);
        counters.sort_by_key(|c| (c.at, c.from, c.to, c.backlog_us));
        TraceData { spans, counters }
    }
}

// ---------------------------------------------------------------------
// Harvested trace.
// ---------------------------------------------------------------------

/// A run's complete trace, deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// All closed spans, sorted by (start, end, phase, node, txn, key).
    pub spans: Vec<Span>,
    /// All counter samples, sorted by (time, link).
    pub counters: Vec<CounterSample>,
}

impl TraceData {
    /// True when nothing was recorded (tracing off or no activity).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// Per-(phase, class) latency anatomy over all spans.
    pub fn anatomy(&self) -> Anatomy {
        let mut buckets: HashMap<(Phase, Option<&'static str>), Vec<u64>> = HashMap::new();
        for s in &self.spans {
            buckets
                .entry((s.phase, s.class))
                .or_default()
                .push(s.duration().as_micros());
        }
        let mut rows: Vec<PhaseStat> = buckets
            .into_iter()
            .map(|((phase, class), mut us)| {
                us.sort_unstable();
                PhaseStat {
                    phase,
                    class,
                    count: us.len() as u64,
                    p50_ms: pct_us(&us, 50.0) / 1_000.0,
                    p95_ms: pct_us(&us, 95.0) / 1_000.0,
                    p99_ms: pct_us(&us, 99.0) / 1_000.0,
                }
            })
            .collect();
        rows.sort_by(|a, b| (a.phase, a.class).cmp(&(b.phase, b.class)));
        Anatomy { rows }
    }

    /// Serializes the trace as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load). `pid` is the data center,
    /// `tid` the node; durations and timestamps are virtual µs. The
    /// output is a pure function of the span list, hence of the seed.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.spans.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{",
                s.phase.name(),
                s.phase.category(),
                s.start.as_micros(),
                s.duration().as_micros(),
                s.dc.0,
                s.node.0,
            ));
            let mut first_arg = true;
            if let Some(txn) = &s.txn {
                out.push_str(&format!("\"txn\":\"{}\"", json_escape(&txn.to_string())));
                first_arg = false;
            }
            if let Some(key) = &s.key {
                if !first_arg {
                    out.push(',');
                }
                out.push_str(&format!("\"key\":\"{}\"", json_escape(&key.to_string())));
                first_arg = false;
            }
            if let Some(class) = s.class {
                if !first_arg {
                    out.push(',');
                }
                out.push_str(&format!("\"class\":\"{class}\""));
            }
            out.push_str("}}");
        }
        for cs in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{} {}->{}\",\"cat\":\"net\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"backlog_us\":{}}}}}",
                cs.name,
                cs.from,
                cs.to,
                cs.at.as_micros(),
                cs.from.0,
                cs.backlog_us,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nearest-rank percentile over sorted µs durations, as f64 µs.
fn pct_us(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    sorted_us[rank.min(sorted_us.len()) - 1] as f64
}

// ---------------------------------------------------------------------
// Anatomy table.
// ---------------------------------------------------------------------

/// Latency statistics for one (phase, traffic-class) bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// The phase.
    pub phase: Phase,
    /// Traffic-class label for `Net*` rows, `None` for protocol/WAL.
    pub class: Option<&'static str>,
    /// Spans in the bucket.
    pub count: u64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 95th percentile, ms.
    pub p95_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
}

impl PhaseStat {
    /// Row label: phase name, plus class where present.
    pub fn label(&self) -> String {
        match self.class {
            Some(c) => format!("{} [{}]", self.phase.name(), c),
            None => self.phase.name().to_string(),
        }
    }
}

/// Per-phase latency breakdown; `Display` renders the driver table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Anatomy {
    /// One row per (phase, class) bucket, in [`Phase::ALL`] order.
    pub rows: Vec<PhaseStat>,
}

impl Anatomy {
    /// Stats for a phase, summed over classes — `None` if never traced.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseStat> {
        self.rows.iter().find(|r| r.phase == phase)
    }

    /// Number of distinct phases observed.
    pub fn phase_count(&self) -> usize {
        let mut phases: Vec<Phase> = self.rows.iter().map(|r| r.phase).collect();
        phases.dedup();
        phases.len()
    }
}

impl fmt::Display for Anatomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows.is_empty() {
            return writeln!(f, "  (no spans recorded)");
        }
        writeln!(
            f,
            "  {:<24} {:>8} {:>9} {:>9} {:>9}",
            "phase", "count", "p50 ms", "p95 ms", "p99 ms"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<24} {:>8} {:>9.3} {:>9.3} {:>9.3}",
                r.label(),
                r.count,
                r.p50_ms,
                r.p95_ms,
                r.p99_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdcc_common::TableId;

    fn k(pk: &str) -> Key {
        Key::new(TableId(1), pk)
    }

    fn handle() -> TraceHandle {
        TraceHandle::new(TraceConfig::on())
    }

    #[test]
    fn off_switch_records_nothing() {
        let t = TraceHandle::new(TraceConfig::off());
        let txn = TxnId::new(NodeId(1), 0);
        t.begin(
            NodeId(1),
            DcId(0),
            Some(txn),
            None,
            Phase::Commit,
            SimTime(10),
        );
        t.end(NodeId(1), Some(txn), None, Phase::Commit, SimTime(50));
        t.span(Span {
            node: NodeId(2),
            dc: DcId(1),
            phase: Phase::NetQueue,
            start: SimTime(0),
            end: SimTime(5),
            txn: None,
            key: None,
            class: Some("protocol"),
        });
        assert!(t.take().is_empty());
    }

    #[test]
    fn begin_end_produces_span() {
        let t = handle();
        let txn = TxnId::new(NodeId(3), 7);
        t.begin(
            NodeId(3),
            DcId(0),
            Some(txn),
            Some(k("a")),
            Phase::Phase2b,
            SimTime(100),
        );
        t.end(
            NodeId(3),
            Some(txn),
            Some(k("a")),
            Phase::Phase2b,
            SimTime(350),
        );
        let data = t.take();
        assert_eq!(data.spans.len(), 1);
        let s = &data.spans[0];
        assert_eq!(s.phase, Phase::Phase2b);
        assert_eq!(s.duration(), SimDuration(250));
        assert_eq!(s.txn, Some(txn));
        assert_eq!(s.key, Some(k("a")));
    }

    #[test]
    fn first_begin_wins_and_unmatched_end_is_ignored() {
        let t = handle();
        let txn = TxnId::new(NodeId(1), 1);
        t.begin(
            NodeId(1),
            DcId(0),
            Some(txn),
            None,
            Phase::Phase1,
            SimTime(10),
        );
        t.begin(
            NodeId(1),
            DcId(0),
            Some(txn),
            None,
            Phase::Phase1,
            SimTime(20),
        );
        t.end(NodeId(1), Some(txn), None, Phase::Phase1, SimTime(40));
        t.end(NodeId(1), Some(txn), None, Phase::Phase1, SimTime(99)); // already closed
        let data = t.take();
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].start, SimTime(10));
        assert_eq!(data.spans[0].end, SimTime(40));
    }

    #[test]
    fn extended_spans_close_at_harvest_and_bare_opens_drop() {
        let t = handle();
        let txn = TxnId::new(NodeId(2), 4);
        t.begin(
            NodeId(2),
            DcId(1),
            Some(txn),
            None,
            Phase::Visibility,
            SimTime(100),
        );
        t.extend(NodeId(2), Some(txn), None, Phase::Visibility, SimTime(180));
        t.extend(NodeId(2), Some(txn), None, Phase::Visibility, SimTime(150)); // non-monotone ok
                                                                               // A begun-but-never-touched span must not survive harvest.
        t.begin(
            NodeId(2),
            DcId(1),
            Some(txn),
            None,
            Phase::Commit,
            SimTime(100),
        );
        let data = t.take();
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].phase, Phase::Visibility);
        assert_eq!(data.spans[0].end, SimTime(180));
    }

    #[test]
    fn sampling_keeps_one_in_n_by_txn_seq() {
        let t = TraceHandle::new(TraceConfig {
            enabled: true,
            sample: 4,
            profile: false,
        });
        for seq in 0..16 {
            let txn = TxnId::new(NodeId(1), seq);
            t.begin(
                NodeId(1),
                DcId(0),
                Some(txn),
                None,
                Phase::Commit,
                SimTime(seq),
            );
            t.end(NodeId(1), Some(txn), None, Phase::Commit, SimTime(seq + 1));
        }
        assert_eq!(t.take().spans.len(), 4); // seq 0, 4, 8, 12
    }

    #[test]
    fn anatomy_buckets_by_phase_and_class() {
        let t = handle();
        for (i, class) in [("a", "protocol"), ("b", "protocol"), ("c", "read")]
            .iter()
            .enumerate()
        {
            t.span(Span {
                node: NodeId(i as u32),
                dc: DcId(0),
                phase: Phase::NetQueue,
                start: SimTime(0),
                end: SimTime(1_000 * (i as u64 + 1)),
                txn: None,
                key: None,
                class: Some(class.1),
            });
        }
        let txn = TxnId::new(NodeId(0), 0);
        t.begin(
            NodeId(0),
            DcId(0),
            Some(txn),
            None,
            Phase::Commit,
            SimTime(0),
        );
        t.end(NodeId(0), Some(txn), None, Phase::Commit, SimTime(9_000));
        let anatomy = t.take().anatomy();
        assert_eq!(anatomy.rows.len(), 3); // commit, netqueue×2 classes
        assert_eq!(anatomy.phase_count(), 2);
        let commit = anatomy.phase(Phase::Commit).unwrap();
        assert_eq!(commit.count, 1);
        assert!((commit.p50_ms - 9.0).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_is_deterministic_and_well_formed() {
        let build = || {
            let t = handle();
            let txn = TxnId::new(NodeId(2), 3);
            t.begin(
                NodeId(2),
                DcId(1),
                Some(txn),
                Some(k("x\"esc")),
                Phase::Phase2b,
                SimTime(5),
            );
            t.end(
                NodeId(2),
                Some(txn),
                Some(k("x\"esc")),
                Phase::Phase2b,
                SimTime(25),
            );
            t.counter(CounterSample {
                name: "link",
                from: DcId(0),
                to: DcId(1),
                at: SimTime(7),
                backlog_us: 42,
            });
            t.take().to_chrome_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(a.ends_with("]}"));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("x\\\"esc"));
        assert!(a.contains("\"dur\":20"));
    }

    #[test]
    fn harvest_order_is_independent_of_insertion_order() {
        let spans = |order: &[u64]| {
            let t = handle();
            for &seq in order {
                let txn = TxnId::new(NodeId(1), seq);
                t.begin(
                    NodeId(1),
                    DcId(0),
                    Some(txn),
                    None,
                    Phase::Commit,
                    SimTime(10),
                );
                t.extend(NodeId(1), Some(txn), None, Phase::Commit, SimTime(20));
            }
            t.take().spans
        };
        assert_eq!(spans(&[3, 1, 2]), spans(&[1, 2, 3]));
    }
}

//! The event queue: a time-ordered heap with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mdcc_common::{NodeId, SimTime};

/// Identifier of a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// What a popped event asks the world to do.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// Deliver a network message to `target`.
    Deliver {
        /// Sender of the message.
        from: NodeId,
        /// Message payload.
        msg: M,
        /// Wire size of the message; drives the receiver's per-byte
        /// deserialization cost.
        bytes: usize,
    },
    /// Deliver a coalesced envelope of same-class messages from one
    /// sender: the receiver pays one service-time floor (plus the
    /// per-byte cost of the whole envelope) and then dispatches the
    /// payloads in send order.
    DeliverEnvelope {
        /// Sender of every payload.
        from: NodeId,
        /// The coalesced payloads, oldest first.
        msgs: Vec<M>,
        /// Wire size of the whole envelope (frame header + per-message
        /// length prefixes + payloads).
        bytes: usize,
    },
    /// Flush `target`'s coalescing outbox (scheduled when a Nagle-style
    /// `coalesce_window` holds sends past the end of their event).
    FlushOutbox,
    /// Fire a timer previously set by `target` itself.
    Timer {
        /// Id returned by `set_timer`, checked against cancellations.
        id: TimerId,
        /// Payload the process attached to the timer.
        msg: M,
        /// Incarnation of `target` at the time the timer was set. A timer
        /// armed by a crashed incarnation must not fire into its restarted
        /// successor, so the world drops timers whose incarnation lags.
        incarnation: u32,
    },
    /// Invoke `Process::on_start` for `target` (scheduled at spawn).
    Start,
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    /// Insertion sequence number; breaks ties deterministically (FIFO).
    pub seq: u64,
    /// Node the event is addressed to.
    pub target: NodeId,
    /// Payload.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest event
        // (smallest time, then smallest sequence number) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of events ordered by `(time, seq)`.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` for `target` at time `at`.
    pub fn push(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            at,
            seq,
            target,
            kind,
        });
    }

    /// Re-inserts an already-sequenced event (used when a busy node defers
    /// handling); the original sequence number keeps FIFO order among
    /// deferred events.
    pub fn push_deferred(&mut self, event: Event<M>) {
        self.heap.push(event);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Target of the earliest pending event.
    pub fn peek_target(&self) -> Option<NodeId> {
        self.heap.peek().map(|e| e.target)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u32) -> EventKind<&'static str> {
        EventKind::Deliver {
            from: NodeId(n),
            msg: "m",
            bytes: 1,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), NodeId(0), deliver(1));
        q.push(SimTime::from_millis(10), NodeId(0), deliver(2));
        q.push(SimTime::from_millis(20), NodeId(0), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100u32 {
            q.push(t, NodeId(i), deliver(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deferred_events_keep_their_sequence() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), NodeId(0), deliver(0));
        q.push(SimTime::from_millis(1), NodeId(1), deliver(1));
        let mut first = q.pop().unwrap();
        // Defer the first event to t=2; it now races the event at t=1 and
        // must lose, but at t=2 it beats any *newly pushed* t=2 event.
        first.at = SimTime::from_millis(2);
        q.push_deferred(first);
        q.push(SimTime::from_millis(2), NodeId(2), deliver(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), NodeId(0), deliver(0));
        q.push(SimTime::from_millis(4), NodeId(0), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}

//! The event queue: a time-ordered heap with deterministic tie-breaking.
//!
//! # Intrinsic event stamps
//!
//! Events used to be tie-broken by a global insertion counter, which
//! made the pop order depend on *when* the scheduler happened to push —
//! a property only a single sequential loop can reproduce. Every event
//! now carries an [`EventKey`] derived from its *cause*: the time it
//! was emitted, the node that emitted it, and that node's private
//! monotone emit counter. The comparator `(at, cause, node, emit)` is a
//! total order over events that is a pure function of the simulation's
//! history, so per-DC shard queues and a single global queue pop events
//! for any one node in exactly the same order — the property the
//! parallel runner's byte-identity guarantee rests on.
//!
//! # Slab storage
//!
//! `BinaryHeap` sift operations move whole elements. Protocol message
//! enums run to hundreds of bytes, so the heap stores fixed 32-byte
//! entries (`at`, key, slot index) and parks each event's payload in a
//! slab until it pops; deferring a delivery at a busy node re-pushes
//! only the small entry, never touching the payload.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mdcc_common::{NodeId, SimTime};

/// Identifier of a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// Intrinsic identity of an event: when and by whom it was caused.
///
/// `(cause, node, emit)` is unique — `emit` is the emitting node's
/// private counter — and totally ordered, so ties at equal delivery
/// time resolve identically no matter which queue the event sat in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Time the causing handler ran (send/arm/spawn time).
    pub cause: SimTime,
    /// Emitting node (sender for deliveries, owner for timers).
    pub node: u32,
    /// The emitting node's monotone emit counter.
    pub emit: u64,
}

/// What a popped event asks the world to do.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// Deliver a network message to `target`.
    Deliver {
        /// Sender of the message.
        from: NodeId,
        /// Message payload.
        msg: M,
        /// Wire size of the message; drives the receiver's per-byte
        /// deserialization cost.
        bytes: usize,
    },
    /// Deliver a coalesced envelope of same-class messages from one
    /// sender: the receiver pays one service-time floor (plus the
    /// per-byte cost of the whole envelope) and then dispatches the
    /// payloads in send order.
    DeliverEnvelope {
        /// Sender of every payload.
        from: NodeId,
        /// The coalesced payloads, oldest first.
        msgs: Vec<M>,
        /// Wire size of the whole envelope (frame header + per-message
        /// length prefixes + payloads).
        bytes: usize,
    },
    /// Flush `target`'s coalescing outbox (scheduled when a Nagle-style
    /// `coalesce_window` holds sends past the end of their event).
    FlushOutbox,
    /// Fire the covering fsync of `target`'s open group-commit batch:
    /// every WAL append since the last sync becomes durable under one
    /// `fsync_latency` charge and the batch's held acks are released
    /// (scheduled when group commit holds appends past their event,
    /// mirroring `FlushOutbox`).
    GroupFsync,
    /// Fire a timer previously set by `target` itself.
    Timer {
        /// Id returned by `set_timer`, checked against cancellations.
        id: TimerId,
        /// Payload the process attached to the timer.
        msg: M,
        /// Incarnation of `target` at the time the timer was set. A timer
        /// armed by a crashed incarnation must not fire into its restarted
        /// successor, so the world drops timers whose incarnation lags.
        incarnation: u32,
    },
    /// Invoke `Process::on_start` for `target` (scheduled at spawn).
    Start,
}

/// A scheduled event.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual time at which the event fires.
    pub at: SimTime,
    /// Intrinsic identity; breaks delivery-time ties deterministically.
    pub key: EventKey,
    /// Node the event is addressed to.
    pub target: NodeId,
    /// Payload.
    pub kind: EventKind<M>,
}

/// Fixed-size heap entry: the payload stays in the slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    at: SimTime,
    key: EventKey,
    slot: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the earliest
        // event (smallest time, then smallest key) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// Min-heap of events ordered by `(time, key)`.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<HeapEntry>,
    slots: Vec<Option<(NodeId, EventKind<M>)>>,
    free: Vec<u32>,
    /// Emit counter for events pushed without an explicit key
    /// (tests, benches, world-external injection).
    auto_emit: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            auto_emit: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` for `target` at time `at` with an automatically
    /// derived key (`cause = at`, `node = target`, queue-local emit
    /// counter). Ties at equal time pop in push order, matching the old
    /// insertion-sequence semantics for single-queue callers.
    pub fn push(&mut self, at: SimTime, target: NodeId, kind: EventKind<M>) {
        let emit = self.auto_emit;
        self.auto_emit += 1;
        self.push_keyed(
            at,
            EventKey {
                cause: at,
                node: target.0,
                emit,
            },
            target,
            kind,
        );
    }

    /// Schedules `kind` for `target` at `at` under an explicit intrinsic
    /// key (the world derives keys from the emitting node).
    pub fn push_keyed(&mut self, at: SimTime, key: EventKey, target: NodeId, kind: EventKind<M>) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((target, kind));
                s
            }
            None => {
                self.slots.push(Some((target, kind)));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(HeapEntry { at, key, slot });
    }

    /// Re-inserts an already-keyed event (used when a busy node defers
    /// handling); the original key keeps FIFO order among deferred
    /// events racing newly emitted ones at the same time.
    pub fn push_deferred(&mut self, event: Event<M>) {
        self.push_keyed(event.at, event.key, event.target, event.kind);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event<M>> {
        let entry = self.heap.pop()?;
        let (target, kind) = self.slots[entry.slot as usize]
            .take()
            .expect("heap entry has a live slot");
        self.free.push(entry.slot);
        Some(Event {
            at: entry.at,
            key: entry.key,
            target,
            kind,
        })
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Time and key of the earliest pending event; the k-way shard
    /// merge compares these pairs to reproduce the global pop order.
    pub fn peek_rank(&self) -> Option<(SimTime, EventKey)> {
        self.heap.peek().map(|e| (e.at, e.key))
    }

    /// Target of the earliest pending event.
    pub fn peek_target(&self) -> Option<NodeId> {
        self.heap
            .peek()
            .map(|e| self.slots[e.slot as usize].as_ref().expect("live slot").0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(n: u32) -> EventKind<&'static str> {
        EventKind::Deliver {
            from: NodeId(n),
            msg: "m",
            bytes: 1,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), NodeId(0), deliver(1));
        q.push(SimTime::from_millis(10), NodeId(0), deliver(2));
        q.push(SimTime::from_millis(20), NodeId(0), deliver(3));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_millis())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100u32 {
            q.push(t, NodeId(i), deliver(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_by_key_not_push_order() {
        // Explicit keys override push order: the smaller (cause, node,
        // emit) pops first regardless of which was pushed first.
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        let late_cause = EventKey {
            cause: SimTime::from_millis(4),
            node: 9,
            emit: 0,
        };
        let early_cause = EventKey {
            cause: SimTime::from_millis(2),
            node: 1,
            emit: 7,
        };
        q.push_keyed(t, late_cause, NodeId(0), deliver(0));
        q.push_keyed(t, early_cause, NodeId(1), deliver(1));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
        assert_eq!(order, vec![1, 0], "earlier cause wins the tie");
    }

    #[test]
    fn deferred_events_keep_their_sequence() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(1), NodeId(0), deliver(0));
        q.push(SimTime::from_millis(1), NodeId(1), deliver(1));
        let mut first = q.pop().unwrap();
        // Defer the first event to t=2; it now races the event at t=1 and
        // must lose, but at t=2 it beats any *newly pushed* t=2 event
        // (its cause time is older).
        first.at = SimTime::from_millis(2);
        q.push_deferred(first);
        q.push(SimTime::from_millis(2), NodeId(2), deliver(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|e| e.target.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn peek_time_tracks_minimum() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(9), NodeId(0), deliver(0));
        q.push(SimTime::from_millis(4), NodeId(0), deliver(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_target(), Some(NodeId(0)));
        let (t, k) = q.peek_rank().unwrap();
        assert_eq!(t, SimTime::from_millis(4));
        assert_eq!(k.node, 0);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..3u64 {
            for i in 0..8u32 {
                q.push(SimTime(round * 10 + i as u64), NodeId(i), deliver(i));
            }
            while q.pop().is_some() {}
        }
        assert!(q.slots.len() <= 8, "slab grew past peak occupancy");
    }
}

//! Wide-area network model: latency matrix, bandwidth, jitter and loss.
//!
//! The paper's protocol behaviour is driven entirely by *which replica
//! answers when*: the 3rd- versus 4th-closest data center decides classic
//! versus fast quorum latency. A symmetric RTT matrix between data centers,
//! halved into one-way delays and multiplied by lognormal jitter,
//! reproduces exactly that structure ("delays ... differ between pairs of
//! locations, and also over time", §1).
//!
//! On top of propagation delay, every link has a **bandwidth**: a message
//! of `b` bytes occupies the link for `b / bandwidth` (its transmission
//! delay), and the world serializes concurrent transmissions FIFO per
//! directed data-center pair — so a recovery burst congests the link it
//! rides instead of teleporting, which is the cost model the simulator
//! previously ignored (all messages were free to be arbitrarily large).

use mdcc_common::{DcId, SimDuration};
use rand::Rng;

/// Default inter-data-center link bandwidth: 10 Gbit/s in bytes/second
/// (a dedicated wide-area backbone; tighten with
/// [`NetworkModel::with_inter_dc_bandwidth`] to study congestion).
pub const DEFAULT_INTER_DC_BANDWIDTH: f64 = 1_250_000_000.0;

/// Default intra-data-center fabric bandwidth: 100 Gbit/s in
/// bytes/second.
pub const DEFAULT_INTRA_DC_BANDWIDTH: f64 = 12_500_000_000.0;

/// One edge of the latency matrix, in round-trip milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// First endpoint.
    pub a: DcId,
    /// Second endpoint.
    pub b: DcId,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Link bandwidth in bytes/second; `None` uses the model default.
    pub bandwidth_bps: Option<f64>,
}

impl LinkSpec {
    /// Convenience constructor (default bandwidth).
    pub fn new(a: u8, b: u8, rtt_ms: f64) -> Self {
        Self {
            a: DcId(a),
            b: DcId(b),
            rtt_ms,
            bandwidth_bps: None,
        }
    }

    /// Sets this link's bandwidth in bytes/second.
    pub fn with_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        self.bandwidth_bps = Some(bytes_per_sec);
        self
    }
}

/// Samples message delays between data centers.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Symmetric RTT matrix in ms; diagonal holds the intra-DC RTT.
    rtt_ms: Vec<Vec<f64>>,
    /// Symmetric bandwidth matrix in bytes/second; diagonal holds the
    /// intra-DC fabric bandwidth.
    bandwidth_bps: Vec<Vec<f64>>,
    /// Lognormal sigma applied multiplicatively to each one-way delay.
    jitter_sigma: f64,
    /// Probability a message is silently lost.
    drop_prob: f64,
}

impl NetworkModel {
    /// Builds a model for `dcs` data centers from pairwise links.
    ///
    /// Links are symmetric; unspecified pairs default to the largest
    /// specified RTT (conservative). `intra_rtt_ms` fills the diagonal.
    pub fn from_links(dcs: usize, links: &[LinkSpec], intra_rtt_ms: f64) -> Self {
        let max_rtt = links.iter().map(|l| l.rtt_ms).fold(1.0, f64::max);
        let mut rtt = vec![vec![max_rtt; dcs]; dcs];
        let mut bw = vec![vec![DEFAULT_INTER_DC_BANDWIDTH; dcs]; dcs];
        for i in 0..dcs {
            rtt[i][i] = intra_rtt_ms;
            bw[i][i] = DEFAULT_INTRA_DC_BANDWIDTH;
        }
        for l in links {
            let (a, b) = (l.a.0 as usize, l.b.0 as usize);
            assert!(a < dcs && b < dcs, "link endpoint outside topology");
            rtt[a][b] = l.rtt_ms;
            rtt[b][a] = l.rtt_ms;
            if let Some(bps) = l.bandwidth_bps {
                bw[a][b] = bps;
                bw[b][a] = bps;
            }
        }
        Self {
            rtt_ms: rtt,
            bandwidth_bps: bw,
            jitter_sigma: 0.08,
            drop_prob: 0.0,
        }
    }

    /// A uniform model: every inter-DC pair has the same RTT. Useful in
    /// tests that do not care about geography.
    pub fn uniform(dcs: usize, inter_rtt_ms: f64, intra_rtt_ms: f64) -> Self {
        Self::from_links(dcs, &[], intra_rtt_ms).with_default_rtt(inter_rtt_ms)
    }

    fn with_default_rtt(mut self, rtt: f64) -> Self {
        let n = self.rtt_ms.len();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.rtt_ms[i][j] = rtt;
                }
            }
        }
        self
    }

    /// Sets the lognormal jitter sigma (0 disables jitter).
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        self.jitter_sigma = sigma;
        self
    }

    /// Sets the message loss probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.drop_prob = p;
        self
    }

    /// Sets every inter-DC link's bandwidth (bytes/second); the intra-DC
    /// diagonal is left alone.
    pub fn with_inter_dc_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        let n = self.bandwidth_bps.len();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.bandwidth_bps[i][j] = bytes_per_sec;
                }
            }
        }
        self
    }

    /// Sets one link's bandwidth (bytes/second), symmetrically.
    pub fn with_link_bandwidth(mut self, a: DcId, b: DcId, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        self.bandwidth_bps[a.0 as usize][b.0 as usize] = bytes_per_sec;
        self.bandwidth_bps[b.0 as usize][a.0 as usize] = bytes_per_sec;
        self
    }

    /// The configured bandwidth between two data centers, bytes/second.
    pub fn bandwidth_bps(&self, a: DcId, b: DcId) -> f64 {
        self.bandwidth_bps[a.0 as usize][b.0 as usize]
    }

    /// How long `bytes` occupy the `from → to` link: the transmission
    /// delay `bytes / bandwidth`, rounded to the clock's microsecond
    /// granularity. The world serializes transmissions FIFO per link, so
    /// this is also each message's contribution to queueing behind it.
    pub fn transmission_delay(&self, from: DcId, to: DcId, bytes: usize) -> SimDuration {
        let bps = self.bandwidth_bps(from, to);
        SimDuration::from_micros(((bytes as f64 / bps) * 1_000_000.0).round() as u64)
    }

    /// Number of data centers the model covers.
    pub fn dc_count(&self) -> usize {
        self.rtt_ms.len()
    }

    /// The configured (jitter-free) RTT between two data centers, ms.
    pub fn base_rtt_ms(&self, a: DcId, b: DcId) -> f64 {
        self.rtt_ms[a.0 as usize][b.0 as usize]
    }

    /// Samples the one-way delay for a message from `from` to `to`, or
    /// `None` if the message is lost.
    pub fn sample_delay<R: Rng>(&self, from: DcId, to: DcId, rng: &mut R) -> Option<SimDuration> {
        if self.drop_prob > 0.0 && rng.gen::<f64>() < self.drop_prob {
            return None;
        }
        let half_rtt = self.base_rtt_ms(from, to) / 2.0;
        let jitter = if self.jitter_sigma == 0.0 {
            1.0
        } else {
            lognormal_multiplier(rng, self.jitter_sigma)
        };
        Some(SimDuration::from_millis_f64((half_rtt * jitter).max(0.01)))
    }

    /// A guaranteed lower bound on every *inter*-DC one-way delay the
    /// model can ever sample: the smallest half-RTT scaled by the worst
    /// jitter multiplier (`exp(-3σ)` — [`lognormal_multiplier`] truncates
    /// z at ±3σ), clamped to the same 0.01 ms floor `sample_delay` uses.
    ///
    /// This is the conservative-parallel runner's *lookahead*: an event
    /// processed at time `t` can only schedule work on another data
    /// center at `t + min_inter_dc_delay()` or later, so shards may run
    /// independently inside any window shorter than this bound.
    /// `SimDuration::from_millis_f64` rounds to the nearest µs, which is
    /// monotone, so the rounded bound never exceeds a rounded sample.
    pub fn min_inter_dc_delay(&self) -> SimDuration {
        let n = self.rtt_ms.len();
        let mut min_ms = f64::MAX;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    min_ms = min_ms.min(self.rtt_ms[a][b]);
                }
            }
        }
        if min_ms == f64::MAX {
            // Single-DC model: no inter-DC edge exists, any bound works.
            return SimDuration::from_millis(1);
        }
        let worst_jitter = (-3.0 * self.jitter_sigma).exp();
        SimDuration::from_millis_f64(((min_ms / 2.0) * worst_jitter).max(0.01))
    }
}

/// Samples `exp(sigma * z)` with `z` standard normal (Box–Muller),
/// truncated to ±3σ so pathological tails cannot dominate an experiment.
fn lognormal_multiplier<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z.clamp(-3.0, 3.0)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_model_has_requested_rtts() {
        let net = NetworkModel::uniform(3, 100.0, 1.0);
        assert_eq!(net.base_rtt_ms(DcId(0), DcId(1)), 100.0);
        assert_eq!(net.base_rtt_ms(DcId(2), DcId(2)), 1.0);
        assert_eq!(net.dc_count(), 3);
    }

    #[test]
    fn links_are_symmetric_and_default_to_max() {
        let net = NetworkModel::from_links(
            3,
            &[LinkSpec::new(0, 1, 80.0), LinkSpec::new(0, 2, 200.0)],
            1.0,
        );
        assert_eq!(net.base_rtt_ms(DcId(1), DcId(0)), 80.0);
        assert_eq!(net.base_rtt_ms(DcId(0), DcId(2)), 200.0);
        // The 1-2 pair was unspecified: defaults to the max (200).
        assert_eq!(net.base_rtt_ms(DcId(1), DcId(2)), 200.0);
    }

    #[test]
    fn delay_is_about_half_rtt() {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let d = net.sample_delay(DcId(0), DcId(1), &mut rng).unwrap();
        assert_eq!(d.as_millis(), 50);
    }

    #[test]
    fn jitter_spreads_but_stays_reasonable() {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.1);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        const TRIALS: usize = 2_000;
        for _ in 0..TRIALS {
            let d = net
                .sample_delay(DcId(0), DcId(1), &mut rng)
                .unwrap()
                .as_millis_f64();
            min = min.min(d);
            max = max.max(d);
            sum += d;
        }
        let mean = sum / TRIALS as f64;
        assert!(min < 50.0 && max > 50.0, "jitter must straddle the base");
        assert!(
            (mean - 50.0).abs() < 2.5,
            "mean should stay near 50, got {mean}"
        );
        assert!(max < 50.0 * 1.4, "truncated tail, got {max}");
    }

    #[test]
    fn transmission_delay_is_proportional_to_bytes() {
        let net = NetworkModel::uniform(2, 100.0, 1.0)
            .with_inter_dc_bandwidth(1_000_000.0) // 1 MB/s
            .with_link_bandwidth(DcId(0), DcId(1), 2_000_000.0);
        // 2 MB/s on the 0↔1 link: 1 MB takes 500 ms.
        let d = net.transmission_delay(DcId(0), DcId(1), 1_000_000);
        assert_eq!(d.as_millis(), 500);
        // Proportionality: half the bytes, half the delay.
        let half = net.transmission_delay(DcId(1), DcId(0), 500_000);
        assert_eq!(half.as_millis(), 250);
        // Tiny messages at default intra-DC bandwidth are effectively free.
        let tiny = net.transmission_delay(DcId(0), DcId(0), 100);
        assert_eq!(tiny.as_micros(), 0);
    }

    #[test]
    fn link_spec_bandwidth_overrides_default() {
        let net = NetworkModel::from_links(
            2,
            &[LinkSpec::new(0, 1, 80.0).with_bandwidth(10_000.0)],
            1.0,
        );
        assert_eq!(net.bandwidth_bps(DcId(0), DcId(1)), 10_000.0);
        assert_eq!(net.bandwidth_bps(DcId(1), DcId(0)), 10_000.0);
        assert_eq!(
            net.bandwidth_bps(DcId(0), DcId(0)),
            DEFAULT_INTRA_DC_BANDWIDTH
        );
    }

    #[test]
    fn drops_follow_probability() {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_drop_prob(0.5);
        let mut rng = SmallRng::seed_from_u64(42);
        let lost = (0..10_000)
            .filter(|_| net.sample_delay(DcId(0), DcId(1), &mut rng).is_none())
            .count();
        assert!((4_000..6_000).contains(&lost), "got {lost} losses");
    }

    #[test]
    fn min_inter_dc_delay_lower_bounds_samples() {
        let net = NetworkModel::from_links(
            3,
            &[LinkSpec::new(0, 1, 80.0), LinkSpec::new(0, 2, 200.0)],
            1.0,
        )
        .with_jitter(0.3);
        let bound = net.min_inter_dc_delay();
        assert!(bound > SimDuration::ZERO);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..5_000 {
            for (a, b) in [(0u8, 1u8), (1, 0), (0, 2), (1, 2)] {
                let d = net.sample_delay(DcId(a), DcId(b), &mut rng).unwrap();
                assert!(d >= bound, "sampled {d:?} under lookahead bound {bound:?}");
            }
        }
        // Jitter-free: the bound is exactly the smallest half-RTT.
        let flat = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        assert_eq!(flat.min_inter_dc_delay(), SimDuration::from_millis(50));
    }

    #[test]
    fn zero_drop_never_loses() {
        let net = NetworkModel::uniform(2, 100.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1_000).all(|_| net.sample_delay(DcId(0), DcId(1), &mut rng).is_some()));
    }
}

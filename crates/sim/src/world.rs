//! The world: clock, event queue, processes and failure injection.
//!
//! # Destination-coalesced envelopes
//!
//! With [`WorldConfig::coalesce`] on (the default), [`Ctx::send`] no
//! longer hands each message straight to the network: sends accumulate
//! in a per-(destination, traffic-class) outbox that the world flushes
//! at the end of the event being handled — or, with a positive
//! [`WorldConfig::coalesce_window`], after a Nagle-style delay so
//! bursts across events coalesce too. Each flushed slot ships as one
//! envelope wire frame: one frame header and one service-time floor
//! per envelope instead of per message, with per-byte costs and
//! per-class byte attribution preserved exactly (only same-class
//! messages share an envelope). Slots flush in first-enqueue order and
//! payloads dispatch in send order, so per-(src, dst, class) FIFO
//! delivery holds whenever the jitter-free network would deliver FIFO.
//! Messages of *different* classes to one destination ride different
//! envelopes and may reorder relative to each other — the same
//! reordering a jittered network already inflicts, which every
//! protocol here must (and does) tolerate.
//!
//! # A conservative parallel per-DC engine
//!
//! The world is partitioned into one [`Shard`] per data center. Each
//! shard owns its nodes' state (processes, RNGs, disks, outboxes), its
//! own event queue, and its own row of the link-FIFO matrix, so shards
//! share nothing mutable. Every event carries an intrinsic
//! [`EventKey`] — `(cause time, emitting node, that node's emit
//! counter)` — and queues order by `(at, key)`, a total order that is a
//! pure function of the simulation's history rather than of scheduler
//! insertion order. Two schedulers run over the same shards:
//!
//! * **sequential** (the default and the off-switch): a k-way merge
//!   that pops the globally smallest `(at, key)` across shards — one
//!   totally ordered event loop, exactly as before;
//! * **parallel** ([`WorldConfig::parallel`]): barrier-epoch
//!   conservative parallel DES. The only cross-shard events are
//!   inter-DC deliveries, whose one-way delay is bounded below by
//!   [`NetworkModel::min_inter_dc_delay`] (the *lookahead* Δ). Each
//!   epoch picks `T` = the earliest pending event anywhere and runs
//!   every shard independently — on its own worker thread — through
//!   the window `[T, T + Δ)`; an event at `t` in the window can only
//!   reach another DC at `t + Δ ≥ T + Δ`, so nothing a peer shard does
//!   in this window can affect it. Cross-DC arrivals buffer in the
//!   sending shard and route at the epoch barrier.
//!
//! Because both schedulers process each shard's events in the same
//! `(at, key)` order, and keys are intrinsic, the parallel runner is
//! **byte-identical** to the sequential one for any seed: same commit
//! outcomes, same wire bytes, same stats. Traced runs always take the
//! sequential path (spans record into one shared collector), which is
//! sound precisely because the two schedulers produce the same
//! execution.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use mdcc_common::wire::envelope_wire_bytes;
use mdcc_common::{DcId, NodeId, SimDuration, SimTime};
use mdcc_trace::{CounterSample, Phase, Span, TraceHandle};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::disk::Disk;
use crate::event::{Event, EventKey, EventKind, EventQueue, TimerId};
use crate::net::NetworkModel;
use crate::process::{Ctx, Effect, NetMessage, Process, TrafficClass};
use crate::topology::Topology;

/// World-level knobs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; two worlds with equal seeds and equal call sequences
    /// produce identical executions.
    pub seed: u64,
    /// Fixed floor of the CPU cost a node pays to handle one message
    /// (syscall + dispatch overhead). Messages arriving at a busy node
    /// queue FIFO behind it — this is what creates the paper's queueing
    /// effects (most visibly Megastore*'s serialization collapse).
    pub service_time: SimDuration,
    /// Per-byte handling cost in nanoseconds, added on top of the floor:
    /// a one-byte vote and a megabyte sync chunk no longer cost the node
    /// the same. The default (40 ns/byte ≈ 25 MB/s of deserialization +
    /// handling) puts a typical ~250-byte protocol message at the 50 µs
    /// the old flat model charged.
    pub service_ns_per_byte: u64,
    /// Coalesce same-destination, same-class sends into envelope frames
    /// (see the module docs). `false` restores the per-message transport
    /// byte for byte — the equivalence baseline.
    pub coalesce: bool,
    /// How long the outbox may hold sends past the end of their event.
    /// Zero (the default here) flushes at end-of-event-handling; the
    /// cluster harness threads `ProtocolConfig::coalesce_window`
    /// through for Nagle-style cross-event batching.
    pub coalesce_window: SimDuration,
    /// Synchronous-flush latency charged to a node whenever an event
    /// handler appended WAL bytes: the node stays busy that much longer
    /// (an fsync on the commit path). Zero — the default — charges
    /// nothing, preserving the pre-fsync schedule exactly.
    pub fsync_latency: SimDuration,
    /// Group commit: WAL appends accumulate in a per-node batch and are
    /// made durable by one covering fsync (scheduled
    /// `group_commit_window` after the batch opens, or forced early
    /// once `group_commit_bytes` accumulate), with every send the
    /// appending handlers produced held back until that fsync — so N
    /// transactions pay one `fsync_latency` instead of N, exactly as
    /// envelope coalescing amortized the per-message service floor.
    /// Inert unless `fsync_latency` is non-zero; `false` restores the
    /// per-append fsync schedule byte for byte.
    pub group_commit: bool,
    /// How long an open group-commit batch may wait for more appends
    /// before its covering fsync fires (the Nagle window of the WAL).
    /// Zero syncs at the end of the appending event — which still
    /// batches all appends of that event under one fsync.
    pub group_commit_window: SimDuration,
    /// Size trigger: an open batch syncs immediately once this many
    /// unsynced WAL bytes accumulate, bounding both the held-ack window
    /// and the data lost to a crash mid-batch.
    pub group_commit_bytes: usize,
    /// Run the per-DC shards on worker threads (conservative parallel
    /// discrete-event simulation; see the module docs). Byte-identical
    /// to the sequential scheduler for any seed — `false`, the default,
    /// is the off-switch. Traced runs fall back to sequential.
    pub parallel: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x4D44_4343, // "MDCC" in ASCII.
            service_time: SimDuration::from_micros(40),
            service_ns_per_byte: 40,
            coalesce: true,
            coalesce_window: SimDuration::ZERO,
            fsync_latency: SimDuration::ZERO,
            group_commit: true,
            group_commit_window: SimDuration::from_micros(500),
            group_commit_bytes: 256 * 1024,
            parallel: false,
        }
    }
}

/// Per-traffic-class message/byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Wire frames handed to the network (envelopes count once).
    pub msgs: u64,
    /// Wire bytes handed to the network.
    pub bytes: u64,
    /// Process-level messages carried by those frames; equals `msgs`
    /// when coalescing is off, and `msgs / payloads` is the coalescing
    /// (amortization) factor when it is on.
    pub payloads: u64,
}

/// Counters the world maintains about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Wire frames handed to the network (a coalesced envelope counts
    /// once — it pays one frame header and one service floor).
    pub sent: u64,
    /// Frames delivered to a live process.
    pub delivered: u64,
    /// Frames lost (network loss, dead node, failed DC).
    pub dropped: u64,
    /// Timers that fired (excludes cancelled).
    pub timers_fired: u64,
    /// Wire bytes handed to the network.
    pub bytes_sent: u64,
    /// Process-level messages carried by all sent frames.
    pub payload_msgs: u64,
    /// Handler invocations dispatched (start/timer/message); divided by
    /// host wall time this is the engine's events/sec throughput.
    pub events_handled: u64,
    /// Synchronous WAL flushes charged (`fsync_latency` each): one per
    /// appending event without group commit, one per batch with it.
    /// Zero when `fsync_latency` is zero — durability then costs
    /// nothing and nothing is counted.
    pub fsyncs: u64,
    /// Sent frames/bytes broken out by [`TrafficClass`] (indexed with
    /// [`TrafficClass::index`]).
    pub by_class: [TrafficTotals; TrafficClass::COUNT],
}

impl WorldStats {
    /// Totals for one traffic class.
    pub fn class(&self, class: TrafficClass) -> TrafficTotals {
        self.by_class[class.index()]
    }

    /// Adds another stats block into this one (shard roll-up; every
    /// field is a commutative counter, so the sum over shards equals
    /// what a single global loop would have counted).
    fn accumulate(&mut self, o: &WorldStats) {
        self.sent += o.sent;
        self.delivered += o.delivered;
        self.dropped += o.dropped;
        self.timers_fired += o.timers_fired;
        self.bytes_sent += o.bytes_sent;
        self.payload_msgs += o.payload_msgs;
        self.events_handled += o.events_handled;
        self.fsyncs += o.fsyncs;
        for i in 0..TrafficClass::COUNT {
            self.by_class[i].msgs += o.by_class[i].msgs;
            self.by_class[i].bytes += o.by_class[i].bytes;
            self.by_class[i].payloads += o.by_class[i].payloads;
        }
    }
}

/// One node's event-loop profile: how much work its handlers did, in
/// events, virtual busy time, and (when host profiling is on) host wall
/// time. The direct input to "which processes to parallelize first".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The node.
    pub node: NodeId,
    /// Its data center.
    pub dc: DcId,
    /// Handler invocations dispatched to it.
    pub events: u64,
    /// Virtual CPU time its handlers were charged (service + fsync).
    pub sim_busy: SimDuration,
    /// Host wall time spent inside its handlers; zero unless the run
    /// profiled wall time (`TraceConfig::profile`).
    pub wall: Duration,
}

/// Per-node accumulator behind [`ProfileEntry`].
#[derive(Debug, Clone, Copy, Default)]
struct ProfileCell {
    events: u64,
    sim_busy: SimDuration,
    wall: Duration,
}

/// Anatomy label for a traffic class (trace-span detail).
fn class_label(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::Protocol => "protocol",
        TrafficClass::Read => "read",
        TrafficClass::Sync => "sync",
        TrafficClass::Repair => "repair",
    }
}

/// Derives a per-node RNG seed from the world seed (splitmix64-style
/// finalizer, so adjacent node ids land far apart in seed space).
fn node_rng_seed(world_seed: u64, node: u32) -> u64 {
    let mut z = world_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One pending envelope: same-destination, same-class messages awaiting
/// flush, with the framed single-message size of each (captured at send
/// time) for byte accounting.
struct OutboxSlot<M> {
    to: NodeId,
    class: TrafficClass,
    msgs: Vec<M>,
    framed_sizes: Vec<usize>,
}

/// The immutable environment shards read while stepping: network and
/// topology by reference, config scalars by value, the trace handle.
/// `Sync`, so one instance is shared by every worker thread of an epoch.
struct Env<'a> {
    net: &'a NetworkModel,
    topology: &'a Topology,
    /// Global node id → slot inside its shard.
    slot_of: &'a [u32],
    service_time: SimDuration,
    service_ns_per_byte: u64,
    coalesce: bool,
    coalesce_window: SimDuration,
    fsync_latency: SimDuration,
    group_commit: bool,
    group_commit_window: SimDuration,
    group_commit_bytes: usize,
    tracer: Option<&'a TraceHandle>,
    trace_on: bool,
    profile_wall: bool,
}

impl Env<'_> {
    /// CPU cost of handling one `bytes`-sized message: the fixed floor
    /// plus the per-byte deserialization cost.
    fn service_cost(&self, bytes: usize) -> SimDuration {
        let per_byte_us = (bytes as u64 * self.service_ns_per_byte + 500) / 1_000;
        self.service_time + SimDuration::from_micros(per_byte_us)
    }

    /// Whether the group-commit discipline is in force. With a zero
    /// `fsync_latency` there is nothing to amortize and the knob stays
    /// inert, so the default schedule is untouched.
    fn group_commit_engaged(&self) -> bool {
        self.group_commit && self.fsync_latency > SimDuration::ZERO
    }
}

/// One data center's slice of the world: its nodes' state, its event
/// queue, its outgoing row of the link matrix. Shares nothing mutable
/// with other shards, so shards step concurrently inside an epoch.
struct Shard<M> {
    dc: DcId,
    now: SimTime,
    queue: EventQueue<M>,
    /// Global node ids, by slot.
    nodes: Vec<u32>,
    procs: Vec<Option<Box<dyn Process<M>>>>,
    busy_until: Vec<SimTime>,
    alive: Vec<bool>,
    /// Bumped on every `restart_node`; timers armed by an older
    /// incarnation are dropped when they fire.
    incarnations: Vec<u32>,
    /// Per-node durable storage; survives crash/restart.
    disks: Vec<Disk>,
    /// Per-node RNGs: protocol randomness and this node's outbound
    /// network sampling, so randomness is a function of the node's own
    /// history — identical under either scheduler.
    rngs: Vec<SmallRng>,
    /// Per-node monotone emit counters (the third component of every
    /// [`EventKey`] this node's sends and timers stamp).
    emit: Vec<u64>,
    /// Per-node timer-id counters, based at `node_id << 40` so ids are
    /// globally unique without any shared state.
    next_timer: Vec<u64>,
    profile: Vec<ProfileCell>,
    /// Per-node coalescing outboxes: slots in first-enqueue order, one
    /// per (destination, traffic class). Cleared when the sender
    /// crashes (unsent messages die with the process).
    outbox: Vec<Vec<OutboxSlot<M>>>,
    /// Per-node deadline of the scheduled Nagle flush, if any; a fired
    /// flush event only counts if its time matches — a crash clears the
    /// entry, so a stale pre-crash flush event cannot cut short the
    /// window of sends buffered after a revival.
    flush_deadline: Vec<Option<SimTime>>,
    /// Per-node deadline of the scheduled group-commit fsync, if any;
    /// deadline-matched exactly like `flush_deadline` so crashes orphan
    /// in-flight fsync events instead of letting them cover a
    /// post-revival batch.
    fsync_deadline: Vec<Option<SimTime>>,
    /// Per-node held sends of the non-coalescing transport while the
    /// node's WAL has unsynced appends: acks must not outrun the
    /// covering fsync, and later sends must not overtake held acks.
    /// (With coalescing on, the outbox itself is the holding pen — it
    /// simply isn't flushed until the fsync.)
    held_sends: Vec<Vec<(NodeId, M, usize, TrafficClass)>>,
    cancelled: HashSet<TimerId>,
    /// This shard's row of the link FIFO matrix: earliest time a new
    /// transmission can start on the directed link `self.dc → to`.
    link_free_at: Vec<SimTime>,
    /// True while this data center is failed (inbound messages drop).
    down: bool,
    stats: WorldStats,
    effects_scratch: Vec<Effect<M>>,
    /// Cross-shard deliveries produced this step/epoch; routed by the
    /// world after the step (sequential) or at the barrier (parallel).
    outgoing: Vec<Event<M>>,
    /// First-arrival times of deferred deliveries, keyed by the event
    /// key's (node, emit) — which survives deferral; populated only
    /// while tracing, so the receive span can start when the frame
    /// reached the busy node.
    arrivals: HashMap<(u32, u64), SimTime>,
}

impl<M: 'static> Shard<M> {
    fn new(dc: DcId, dc_count: usize) -> Self {
        Self {
            dc,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            procs: Vec::new(),
            busy_until: Vec::new(),
            alive: Vec::new(),
            incarnations: Vec::new(),
            disks: Vec::new(),
            rngs: Vec::new(),
            emit: Vec::new(),
            next_timer: Vec::new(),
            profile: Vec::new(),
            outbox: Vec::new(),
            flush_deadline: Vec::new(),
            fsync_deadline: Vec::new(),
            held_sends: Vec::new(),
            cancelled: HashSet::new(),
            link_free_at: vec![SimTime::ZERO; dc_count],
            down: false,
            stats: WorldStats::default(),
            effects_scratch: Vec::new(),
            outgoing: Vec::new(),
            arrivals: HashMap::new(),
        }
    }

    /// Stamps a fresh event key from `slot`'s emit counter at `now`.
    fn next_key(&mut self, node: NodeId, slot: usize) -> EventKey {
        let emit = self.emit[slot];
        self.emit[slot] += 1;
        EventKey {
            cause: self.now,
            node: node.0,
            emit,
        }
    }

    /// Processes every pending event with `at < horizon`, in `(at,
    /// key)` order. The parallel runner's per-epoch worker body.
    fn run_window(&mut self, horizon: SimTime, env: &Env<'_>) {
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let ev = self.queue.pop().expect("peeked event");
            self.step_event(ev, env);
        }
    }

    /// Executes a single already-popped event.
    fn step_event(&mut self, mut ev: Event<M>, env: &Env<'_>) {
        debug_assert!(ev.at >= self.now, "time went backwards");
        let target = ev.target;
        let slot = env.slot_of[target.0 as usize] as usize;
        match ev.kind {
            EventKind::Start => {
                self.now = ev.at;
                if self.alive[slot] {
                    self.dispatch(target, slot, DispatchKind::Start, env);
                    self.flush_after_event(target, slot, env);
                }
            }
            EventKind::Timer {
                id,
                msg,
                incarnation,
            } => {
                self.now = ev.at;
                if self.cancelled.remove(&id)
                    || !self.alive[slot]
                    || incarnation != self.incarnations[slot]
                {
                    return;
                }
                self.stats.timers_fired += 1;
                self.dispatch(target, slot, DispatchKind::Timer(msg), env);
                self.flush_after_event(target, slot, env);
            }
            EventKind::Deliver { from, msg, bytes } => {
                if !self.alive[slot] || self.down {
                    self.now = ev.at;
                    self.stats.dropped += 1;
                    if env.trace_on {
                        self.arrivals.remove(&(ev.key.node, ev.key.emit));
                    }
                    return;
                }
                // Model per-message CPU cost: a busy node defers handling.
                let busy = self.busy_until[slot];
                if busy > ev.at {
                    if env.trace_on {
                        // Remember when the frame first reached the busy
                        // node: the receive span starts there, not at
                        // the deferred handling time.
                        self.arrivals
                            .entry((ev.key.node, ev.key.emit))
                            .or_insert(ev.at);
                    }
                    ev.at = busy;
                    ev.kind = EventKind::Deliver { from, msg, bytes };
                    self.queue.push_deferred(ev);
                    return;
                }
                self.now = ev.at;
                let cost = env.service_cost(bytes);
                self.busy_until[slot] = ev.at + cost;
                self.profile[slot].sim_busy += cost;
                self.stats.delivered += 1;
                if env.trace_on {
                    self.record_service_span(ev.key, target, ev.at, cost, env);
                }
                self.dispatch(target, slot, DispatchKind::Message { from, msg }, env);
                self.flush_after_event(target, slot, env);
            }
            EventKind::DeliverEnvelope { from, msgs, bytes } => {
                if !self.alive[slot] || self.down {
                    self.now = ev.at;
                    self.stats.dropped += 1;
                    if env.trace_on {
                        self.arrivals.remove(&(ev.key.node, ev.key.emit));
                    }
                    return;
                }
                let busy = self.busy_until[slot];
                if busy > ev.at {
                    if env.trace_on {
                        self.arrivals
                            .entry((ev.key.node, ev.key.emit))
                            .or_insert(ev.at);
                    }
                    ev.at = busy;
                    ev.kind = EventKind::DeliverEnvelope { from, msgs, bytes };
                    self.queue.push_deferred(ev);
                    return;
                }
                self.now = ev.at;
                // One service floor plus the per-byte cost of the whole
                // envelope — the amortization coalescing buys.
                let cost = env.service_cost(bytes);
                self.busy_until[slot] = ev.at + cost;
                self.profile[slot].sim_busy += cost;
                self.stats.delivered += 1;
                if env.trace_on {
                    self.record_service_span(ev.key, target, ev.at, cost, env);
                }
                // Unpack before dispatch: payloads in send order, and
                // everything the handlers send batches into the reply
                // flush below.
                for msg in msgs {
                    self.dispatch(target, slot, DispatchKind::Message { from, msg }, env);
                }
                self.flush_after_event(target, slot, env);
            }
            EventKind::FlushOutbox => {
                self.now = ev.at;
                // Only the currently scheduled flush counts; an event
                // orphaned by a crash (which cleared the deadline) must
                // not flush a post-revival batch early.
                if self.flush_deadline[slot] == Some(ev.at) {
                    self.flush_deadline[slot] = None;
                    // A Nagle flush must not leak acks of an open
                    // group-commit batch; the batch's covering fsync
                    // (always pending while appends are unsynced)
                    // flushes the outbox when durability lands.
                    if !(env.group_commit_engaged() && self.disks[slot].has_unsynced()) {
                        self.flush_outbox(target, slot, env);
                    } else {
                        // The batch holds everything except read
                        // replies, which never wait on durability.
                        self.flush_outbox_reads(target, slot, env);
                    }
                }
            }
            EventKind::GroupFsync => {
                self.now = ev.at;
                // Deadline-matched exactly like FlushOutbox: a crash
                // clears the entry, so a stale pre-crash fsync event
                // cannot cover a post-revival batch.
                if self.fsync_deadline[slot] == Some(ev.at) {
                    self.fsync_deadline[slot] = None;
                    self.group_fsync(target, slot, env);
                }
            }
        }
    }

    /// Fires the covering fsync of `src`'s open group-commit batch: one
    /// `fsync_latency` charge makes every append since the last sync
    /// durable, and the sends those appending events held back — their
    /// acks — are released to the network.
    fn group_fsync(&mut self, src: NodeId, slot: usize, env: &Env<'_>) {
        let start = self.busy_until[slot].max(self.now);
        let end = start + env.fsync_latency;
        self.busy_until[slot] = end;
        self.profile[slot].sim_busy += env.fsync_latency;
        self.stats.fsyncs += 1;
        self.disks[slot].fsync();
        if env.trace_on {
            if let Some(tracer) = env.tracer {
                // One span covers the whole batch — the amortization is
                // visible in the anatomy as fewer, not longer, fsyncs.
                tracer.span(Span {
                    node: src,
                    dc: self.dc,
                    phase: Phase::WalFsync,
                    start,
                    end,
                    txn: None,
                    key: None,
                    class: None,
                });
            }
        }
        self.release_held(src, slot, env);
    }

    /// Releases everything `src` buffered while its batch was open:
    /// held per-message sends first (non-coalescing transport, in send
    /// order), then the coalescing outbox.
    fn release_held(&mut self, src: NodeId, slot: usize, env: &Env<'_>) {
        if !self.held_sends[slot].is_empty() {
            let mut held = std::mem::take(&mut self.held_sends[slot]);
            for (to, msg, bytes, class) in held.drain(..) {
                let kind = EventKind::Deliver {
                    from: src,
                    msg,
                    bytes,
                };
                self.push_to_network(src, slot, to, bytes, class, 1, kind, env);
            }
            // Hand the capacity back for the next batch.
            if self.held_sends[slot].is_empty() {
                self.held_sends[slot] = held;
            }
        }
        self.flush_outbox(src, slot, env);
    }

    /// Records the receive span of a delivered frame: from first arrival
    /// (the original delivery time if it was deferred at a busy node)
    /// through the end of its service cost.
    fn record_service_span(
        &mut self,
        key: EventKey,
        target: NodeId,
        at: SimTime,
        cost: SimDuration,
        env: &Env<'_>,
    ) {
        let arrived = self.arrivals.remove(&(key.node, key.emit)).unwrap_or(at);
        if let Some(tracer) = env.tracer {
            tracer.span(Span {
                node: target,
                dc: self.dc,
                phase: Phase::NetService,
                start: arrived,
                end: at + cost,
                txn: None,
                key: None,
                class: None,
            });
        }
    }

    fn dispatch(&mut self, target: NodeId, slot: usize, kind: DispatchKind<M>, env: &Env<'_>) {
        // Take the process out so effects application can borrow `self`.
        let Some(mut proc_) = self.procs[slot].take() else {
            return;
        };
        self.stats.events_handled += 1;
        self.profile[slot].events += 1;
        // Detect durable appends by WAL-byte delta: the disk is the one
        // source of truth, so no handler needs an explicit fsync call.
        let watch_wal = env.fsync_latency > SimDuration::ZERO || env.trace_on;
        let wal_before = if watch_wal {
            self.disks[slot].stats().wal_bytes_written
        } else {
            0
        };
        let wall_start = env.profile_wall.then(std::time::Instant::now);
        let mut effects = std::mem::take(&mut self.effects_scratch);
        {
            let mut ctx = Ctx::with_disk(
                self.now,
                target,
                &mut self.rngs[slot],
                &mut effects,
                &mut self.next_timer[slot],
                &mut self.disks[slot],
            );
            match kind {
                DispatchKind::Start => proc_.on_start(&mut ctx),
                DispatchKind::Timer(msg) => proc_.on_timer(msg, &mut ctx),
                DispatchKind::Message { from, msg } => proc_.on_message(from, msg, &mut ctx),
            }
        }
        if let Some(t0) = wall_start {
            self.profile[slot].wall += t0.elapsed();
        }
        if watch_wal && self.disks[slot].stats().wal_bytes_written > wal_before {
            if env.group_commit_engaged() {
                // Group commit: the append joins the node's open batch
                // instead of paying its own flush. One covering fsync —
                // at the window deadline, or right now if the batch hit
                // its size trigger — will charge a single
                // `fsync_latency` for every append it covers.
                if self.disks[slot].unsynced_bytes() >= env.group_commit_bytes {
                    // Orphan any scheduled windowed fsync (its deadline
                    // no longer matches) and sync at end of this event.
                    self.fsync_deadline[slot] = None;
                    self.group_fsync(target, slot, env);
                } else if self.fsync_deadline[slot].is_none() {
                    let deadline = self.now + env.group_commit_window;
                    self.fsync_deadline[slot] = Some(deadline);
                    let key = self.next_key(target, slot);
                    self.queue
                        .push_keyed(deadline, key, target, EventKind::GroupFsync);
                }
            } else {
                // Per-append fsync: charge the synchronous flush on top
                // of whatever CPU cost the event already cost the node.
                let start = self.busy_until[slot].max(self.now);
                let end = start + env.fsync_latency;
                if env.fsync_latency > SimDuration::ZERO {
                    self.busy_until[slot] = end;
                    self.profile[slot].sim_busy += env.fsync_latency;
                    self.stats.fsyncs += 1;
                    self.disks[slot].fsync();
                }
                if env.trace_on {
                    if let Some(tracer) = env.tracer {
                        tracer.span(Span {
                            node: target,
                            dc: self.dc,
                            phase: Phase::WalFsync,
                            start,
                            end,
                            txn: None,
                            key: None,
                            class: None,
                        });
                    }
                }
            }
        }
        self.procs[slot] = Some(proc_);
        for effect in effects.drain(..) {
            self.apply_effect(target, slot, effect, env);
        }
        self.effects_scratch = effects;
    }

    fn apply_effect(&mut self, source: NodeId, src_slot: usize, effect: Effect<M>, env: &Env<'_>) {
        match effect {
            Effect::Send {
                to,
                msg,
                bytes,
                class,
            } => {
                if env.coalesce {
                    // Coalescing transport: accumulate in the sender's
                    // outbox; the flush at end-of-event (or after the
                    // Nagle window) ships one envelope per slot.
                    let slots = &mut self.outbox[src_slot];
                    match slots.iter_mut().find(|s| s.to == to && s.class == class) {
                        Some(slot) => {
                            slot.msgs.push(msg);
                            slot.framed_sizes.push(bytes);
                        }
                        None => slots.push(OutboxSlot {
                            to,
                            class,
                            msgs: vec![msg],
                            framed_sizes: vec![bytes],
                        }),
                    }
                } else if env.group_commit_engaged()
                    && self.disks[src_slot].has_unsynced()
                    && class != TrafficClass::Read
                {
                    // Legacy transport during an open group-commit
                    // batch: the send waits with the batch (acks must
                    // not outrun the covering fsync, and FIFO per
                    // destination must survive the wait). Read replies
                    // are exempt: they promise no durability, so they
                    // ship immediately instead of queueing behind a
                    // stranger's fsync.
                    self.held_sends[src_slot].push((to, msg, bytes, class));
                } else {
                    // Legacy transport: one frame per message, pushed to
                    // the network immediately (byte-identical baseline).
                    let kind = EventKind::Deliver {
                        from: source,
                        msg,
                        bytes,
                    };
                    self.push_to_network(source, src_slot, to, bytes, class, 1, kind, env);
                }
            }
            Effect::SetTimer { id, delay, msg } => {
                let incarnation = self.incarnations[src_slot];
                let key = self.next_key(source, src_slot);
                self.queue.push_keyed(
                    self.now + delay,
                    key,
                    source,
                    EventKind::Timer {
                        id,
                        msg,
                        incarnation,
                    },
                );
            }
            Effect::CancelTimer(id) => {
                self.cancelled.insert(id);
            }
        }
    }

    /// Hands one wire frame (a bare message or an envelope carrying
    /// `payloads` messages) to the network: accounts it, occupies the
    /// directed DC-pair link FIFO for its transmission delay, and
    /// schedules delivery (or drops it, per the loss model). Same-DC
    /// arrivals go straight onto this shard's queue; cross-DC arrivals
    /// buffer in `outgoing` for the world to route.
    #[allow(clippy::too_many_arguments)]
    fn push_to_network(
        &mut self,
        source: NodeId,
        src_slot: usize,
        to: NodeId,
        bytes: usize,
        class: TrafficClass,
        payloads: u64,
        kind: EventKind<M>,
        env: &Env<'_>,
    ) {
        self.stats.sent += 1;
        self.stats.bytes_sent += bytes as u64;
        self.stats.payload_msgs += payloads;
        let totals = &mut self.stats.by_class[class.index()];
        totals.msgs += 1;
        totals.bytes += bytes as u64;
        totals.payloads += payloads;
        let from_dc = self.dc;
        let to_dc = env.topology.dc_of(to);
        // Transmission: the frame occupies the directed DC-pair link
        // for `bytes / bandwidth`, FIFO behind whatever is already on
        // it — a burst congests the link instead of teleporting. Lost
        // frames occupy the link too: the sender transmits the bytes
        // before the network eats them, so billed bytes and link
        // congestion stay consistent.
        let tx = env.net.transmission_delay(from_dc, to_dc, bytes);
        let link = &mut self.link_free_at[to_dc.0 as usize];
        let start = (*link).max(self.now);
        *link = start + tx;
        if env.trace_on {
            if let Some(tracer) = env.tracer {
                let label = class_label(class);
                if start > self.now {
                    // The frame waited for earlier traffic on the link.
                    tracer.span(Span {
                        node: source,
                        dc: from_dc,
                        phase: Phase::NetQueue,
                        start: self.now,
                        end: start,
                        txn: None,
                        key: None,
                        class: Some(label),
                    });
                }
                tracer.span(Span {
                    node: source,
                    dc: from_dc,
                    phase: Phase::NetTransmit,
                    start,
                    end: start + tx,
                    txn: None,
                    key: None,
                    class: Some(label),
                });
                tracer.counter(CounterSample {
                    name: "link",
                    from: from_dc,
                    to: to_dc,
                    at: self.now,
                    backlog_us: ((start + tx) - self.now).as_micros(),
                });
            }
        }
        match env
            .net
            .sample_delay(from_dc, to_dc, &mut self.rngs[src_slot])
        {
            Some(propagation) => {
                let at = start + tx + propagation;
                let key = self.next_key(source, src_slot);
                if to_dc == self.dc {
                    self.queue.push_keyed(at, key, to, kind);
                } else {
                    self.outgoing.push(Event {
                        at,
                        key,
                        target: to,
                        kind,
                    });
                }
            }
            None => self.stats.dropped += 1,
        }
    }

    /// End-of-event hook of the coalescing transport: flush `src`'s
    /// outbox now (window zero) or make sure a Nagle flush is scheduled.
    fn flush_after_event(&mut self, src: NodeId, slot: usize, env: &Env<'_>) {
        if env.group_commit_engaged() && self.disks[slot].has_unsynced() {
            // The node's WAL has an open group-commit batch: everything
            // it buffered — the batch's acks included — waits for the
            // covering fsync (always pending while appends are
            // unsynced), which flushes the outbox itself. Read replies
            // promise no durability, so they ship now instead of
            // queueing behind the batch.
            self.flush_outbox_reads(src, slot, env);
            return;
        }
        if !env.coalesce || self.outbox[slot].is_empty() {
            return;
        }
        if env.coalesce_window == SimDuration::ZERO {
            self.flush_outbox(src, slot, env);
        } else if self.flush_deadline[slot].is_none() {
            let deadline = self.now + env.coalesce_window;
            self.flush_deadline[slot] = Some(deadline);
            let key = self.next_key(src, slot);
            self.queue
                .push_keyed(deadline, key, src, EventKind::FlushOutbox);
        }
    }

    /// Ships every pending slot of `src`'s outbox, in first-enqueue
    /// order: a single buffered message goes out as the same bare frame
    /// the legacy transport would send; two or more ship as one
    /// envelope (sized by [`envelope_wire_bytes`], matching the
    /// `mdcc_common::wire::Envelope` codec byte for byte).
    fn flush_outbox(&mut self, src: NodeId, src_slot: usize, env: &Env<'_>) {
        if self.outbox[src_slot].is_empty() {
            return;
        }
        // Swap the slot list out (keeping its capacity for the next
        // burst) so push_to_network can borrow `self`.
        let mut slots = std::mem::take(&mut self.outbox[src_slot]);
        for mut slot in slots.drain(..) {
            if slot.msgs.len() == 1 {
                let bytes = slot.framed_sizes[0];
                let kind = EventKind::Deliver {
                    from: src,
                    msg: slot.msgs.pop().expect("one message"),
                    bytes,
                };
                self.push_to_network(src, src_slot, slot.to, bytes, slot.class, 1, kind, env);
            } else {
                let bytes = envelope_wire_bytes(slot.framed_sizes.iter().copied());
                let count = slot.msgs.len() as u64;
                let kind = EventKind::DeliverEnvelope {
                    from: src,
                    msgs: slot.msgs,
                    bytes,
                };
                self.push_to_network(src, src_slot, slot.to, bytes, slot.class, count, kind, env);
            }
        }
        // `slots` is empty but holds its capacity; the field currently
        // holds a fresh empty Vec — give the capacity back unless the
        // handlers above re-buffered (flush during flush can't happen,
        // but keep it robust).
        if self.outbox[src_slot].is_empty() {
            self.outbox[src_slot] = slots;
        }
    }

    /// Ships only the [`TrafficClass::Read`] slots of `src`'s outbox,
    /// leaving everything else buffered for the covering fsync. Stable
    /// index walk so the surviving slots keep their first-enqueue order.
    fn flush_outbox_reads(&mut self, src: NodeId, src_slot: usize, env: &Env<'_>) {
        let mut i = 0;
        while i < self.outbox[src_slot].len() {
            if self.outbox[src_slot][i].class != TrafficClass::Read {
                i += 1;
                continue;
            }
            let mut slot = self.outbox[src_slot].remove(i);
            if slot.msgs.len() == 1 {
                let bytes = slot.framed_sizes[0];
                let kind = EventKind::Deliver {
                    from: src,
                    msg: slot.msgs.pop().expect("one message"),
                    bytes,
                };
                self.push_to_network(src, src_slot, slot.to, bytes, slot.class, 1, kind, env);
            } else {
                let bytes = envelope_wire_bytes(slot.framed_sizes.iter().copied());
                let count = slot.msgs.len() as u64;
                let kind = EventKind::DeliverEnvelope {
                    from: src,
                    msgs: slot.msgs,
                    bytes,
                };
                self.push_to_network(src, src_slot, slot.to, bytes, slot.class, count, kind, env);
            }
        }
    }
}

/// A deterministic discrete-event simulation of one deployment.
pub struct World<M> {
    now: SimTime,
    shards: Vec<Shard<M>>,
    /// Global node id → slot inside its shard (the shard is the node's
    /// DC, via `topology`).
    slot_of: Vec<u32>,
    topology: Topology,
    net: NetworkModel,
    config: WorldConfig,
    /// Conservative-parallel lookahead: `net.min_inter_dc_delay()`.
    lookahead: SimDuration,
    /// Shared trace collector, when the harness attached one.
    tracer: Option<TraceHandle>,
    /// Cached `tracer.enabled()` — tested on every event.
    trace_on: bool,
    /// Cached `tracer.profile()` — whether to time handlers on the host.
    profile_wall: bool,
    /// Emit counter for world-level injections (tests), stamped under a
    /// pseudo-node so they never collide with real emit streams.
    inject_emit: u64,
    /// Reusable buffer for routing cross-shard events.
    route_scratch: Vec<Event<M>>,
}

impl<M: Send + 'static> World<M> {
    /// Creates a world over `net` with the given config.
    pub fn new(net: NetworkModel, config: WorldConfig) -> Self {
        let dc_count = net.dc_count();
        let lookahead = net.min_inter_dc_delay();
        Self {
            now: SimTime::ZERO,
            shards: (0..dc_count)
                .map(|d| Shard::new(DcId(d as u8), dc_count))
                .collect(),
            slot_of: Vec::new(),
            topology: Topology::new(),
            net,
            config,
            lookahead,
            tracer: None,
            trace_on: false,
            profile_wall: false,
            inject_emit: 0,
            route_scratch: Vec::new(),
        }
    }

    /// Attaches a trace collector; the transport and the fsync model
    /// record spans into it from now on. Tracing is observational only —
    /// it never consumes randomness or reschedules an event, so a traced
    /// run's execution is identical to an untraced one. Traced runs use
    /// the sequential scheduler even when `parallel` is set (which
    /// changes nothing observable — the schedulers are byte-identical).
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.trace_on = tracer.enabled();
        self.profile_wall = tracer.profile();
        self.tracer = Some(tracer);
    }

    /// Whether runs will actually use the parallel epoch scheduler.
    pub fn parallel_active(&self) -> bool {
        self.config.parallel && self.shards.len() > 1 && !self.trace_on
    }

    /// Number of worker threads a parallel run uses (1 when sequential).
    pub fn worker_threads(&self) -> usize {
        if self.parallel_active() {
            self.shards.len()
        } else {
            1
        }
    }

    /// Per-node event-loop profile, hottest (by virtual busy time,
    /// events as tie-break) first.
    pub fn profile(&self) -> Vec<ProfileEntry> {
        let mut entries: Vec<ProfileEntry> = Vec::new();
        for shard in &self.shards {
            for (slot, cell) in shard.profile.iter().enumerate() {
                entries.push(ProfileEntry {
                    node: NodeId(shard.nodes[slot]),
                    dc: shard.dc,
                    events: cell.events,
                    sim_busy: cell.sim_busy,
                    wall: cell.wall,
                });
            }
        }
        entries.sort_by(|a, b| {
            (b.sim_busy, b.events, a.node.0).cmp(&(a.sim_busy, a.events, b.node.0))
        });
        entries
    }

    /// Spawns a process in `dc`; its `on_start` runs at the current time.
    pub fn spawn(&mut self, dc: DcId, proc_: Box<dyn Process<M>>) -> NodeId {
        assert!(
            (dc.0 as usize) < self.net.dc_count(),
            "dc outside network model"
        );
        let id = self.topology.add_node(dc);
        let seed = node_rng_seed(self.config.seed, id.0);
        let shard = &mut self.shards[dc.0 as usize];
        let slot = shard.nodes.len();
        self.slot_of.push(slot as u32);
        shard.nodes.push(id.0);
        shard.procs.push(Some(proc_));
        shard.busy_until.push(SimTime::ZERO);
        shard.alive.push(true);
        shard.incarnations.push(0);
        shard.disks.push(Disk::new());
        shard.rngs.push(SmallRng::seed_from_u64(seed));
        shard.emit.push(0);
        shard.next_timer.push((id.0 as u64) << 40);
        shard.profile.push(ProfileCell::default());
        shard.outbox.push(Vec::new());
        shard.flush_deadline.push(None);
        shard.fsync_deadline.push(None);
        shard.held_sends.push(Vec::new());
        shard.now = shard.now.max(self.now);
        let key = EventKey {
            cause: self.now,
            node: id.0,
            emit: shard.emit[slot],
        };
        shard.emit[slot] += 1;
        shard.queue.push_keyed(self.now, key, id, EventKind::Start);
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node-to-DC mapping.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// World-level counters (summed over shards).
    pub fn stats(&self) -> WorldStats {
        let mut total = WorldStats::default();
        for shard in &self.shards {
            total.accumulate(&shard.stats);
        }
        total
    }

    /// Shard and slot of a node.
    fn loc(&self, node: NodeId) -> (usize, usize) {
        (
            self.topology.dc_of(node).0 as usize,
            self.slot_of[node.0 as usize] as usize,
        )
    }

    /// Injects a message from outside the simulation (tests only; regular
    /// traffic should originate in processes).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M)
    where
        M: NetMessage,
    {
        let bytes = msg.wire_bytes();
        let key = EventKey {
            cause: self.now,
            node: u32::MAX,
            emit: self.inject_emit,
        };
        self.inject_emit += 1;
        let (shard, _) = self.loc(to);
        self.shards[shard].queue.push_keyed(
            self.now,
            key,
            to,
            EventKind::Deliver { from, msg, bytes },
        );
    }

    /// Marks a node crashed: inbound messages drop, timers are suppressed,
    /// the process is no longer invoked, and whatever its coalescing
    /// outbox still buffered dies unsent.
    pub fn crash_node(&mut self, node: NodeId) {
        let group_commit =
            self.config.group_commit && self.config.fsync_latency > SimDuration::ZERO;
        let (shard, slot) = self.loc(node);
        let shard = &mut self.shards[shard];
        shard.alive[slot] = false;
        shard.outbox[slot].clear();
        shard.held_sends[slot].clear();
        // Orphan any scheduled flush: its deadline no longer matches
        // the entry, so it fires as a no-op instead of prematurely
        // flushing whatever a revived incarnation buffers later.
        shard.flush_deadline[slot] = None;
        shard.fsync_deadline[slot] = None;
        if group_commit {
            // Power loss mid-batch: the WAL keeps exactly its durable
            // prefix. The batch's acks were held (cleared above with
            // the outbox), so no acknowledged transaction dies
            // un-logged — the crash-consistency contract of group
            // commit. Without group commit every append was
            // synchronously durable and there is nothing to discard.
            shard.disks[slot].discard_unsynced();
        }
    }

    /// Revives a crashed node (its state is whatever it was at crash time,
    /// mirroring a process *pause*; see [`World::restart_node`] for a real
    /// restart that loses volatile state).
    pub fn revive_node(&mut self, node: NodeId) {
        let (shard, slot) = self.loc(node);
        self.shards[shard].alive[slot] = true;
    }

    /// Restarts a crashed node as a fresh process: the old incarnation's
    /// volatile state (including its pending timers) is gone, its disk is
    /// preserved, and `proc_` — typically rebuilt from that disk — runs
    /// `on_start` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the node is still alive; crash it first.
    pub fn restart_node(&mut self, node: NodeId, proc_: Box<dyn Process<M>>) {
        let (shard, slot) = self.loc(node);
        let now = self.now;
        let shard = &mut self.shards[shard];
        assert!(!shard.alive[slot], "restart of a live node: crash it first");
        shard.procs[slot] = Some(proc_);
        shard.alive[slot] = true;
        shard.incarnations[slot] += 1;
        shard.busy_until[slot] = now;
        shard.now = shard.now.max(now);
        let key = EventKey {
            cause: now,
            node: node.0,
            emit: shard.emit[slot],
        };
        shard.emit[slot] += 1;
        shard.queue.push_keyed(now, key, node, EventKind::Start);
    }

    /// True if the node is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        let (shard, slot) = self.loc(node);
        self.shards[shard].alive[slot]
    }

    /// Read access to a node's durable disk.
    pub fn disk(&self, node: NodeId) -> &Disk {
        let (shard, slot) = self.loc(node);
        &self.shards[shard].disks[slot]
    }

    /// Write access to a node's durable disk (harness-side setup, e.g.
    /// seeding an initial checkpoint before the simulation starts).
    pub fn disk_mut(&mut self, node: NodeId) -> &mut Disk {
        let (shard, slot) = self.loc(node);
        &mut self.shards[shard].disks[slot]
    }

    /// Simulates a data-center outage the way the paper does (§5.3.4):
    /// nodes in `dc` stop *receiving* messages. Their timers still fire,
    /// so coordinators inside the failed DC keep timing out — which is the
    /// externally observable behaviour of an unreachable region.
    pub fn fail_dc(&mut self, dc: DcId) {
        self.shards[dc.0 as usize].down = true;
    }

    /// Ends a data-center outage.
    pub fn heal_dc(&mut self, dc: DcId) {
        self.shards[dc.0 as usize].down = false;
    }

    /// True while `dc` is failed.
    pub fn is_dc_down(&self, dc: DcId) -> bool {
        self.shards[dc.0 as usize].down
    }

    /// Immutable access to a process, downcast to its concrete type.
    pub fn get<P: Process<M>>(&self, node: NodeId) -> Option<&P> {
        let (shard, slot) = self.loc(node);
        self.shards[shard].procs[slot]
            .as_deref()
            .and_then(|p| (p as &dyn std::any::Any).downcast_ref())
    }

    /// Mutable access to a process, downcast to its concrete type.
    pub fn get_mut<P: Process<M>>(&mut self, node: NodeId) -> Option<&mut P> {
        let (shard, slot) = self.loc(node);
        self.shards[shard].procs[slot]
            .as_deref_mut()
            .and_then(|p| (p as &mut dyn std::any::Any).downcast_mut())
    }

    /// The shard holding the globally earliest pending event, with that
    /// event's rank. `None` when every queue is empty.
    fn peek_min(&self) -> Option<(SimTime, EventKey, usize)> {
        let mut best: Option<(SimTime, EventKey, usize)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some((t, k)) = shard.queue.peek_rank() {
                if best.is_none_or(|(bt, bk, _)| (t, k) < (bt, bk)) {
                    best = Some((t, k, i));
                }
            }
        }
        best
    }

    /// Pops and executes shard `i`'s earliest event, then routes any
    /// cross-shard deliveries it produced.
    fn step_shard(&mut self, i: usize) {
        let env = Env {
            net: &self.net,
            topology: &self.topology,
            slot_of: &self.slot_of,
            service_time: self.config.service_time,
            service_ns_per_byte: self.config.service_ns_per_byte,
            coalesce: self.config.coalesce,
            coalesce_window: self.config.coalesce_window,
            fsync_latency: self.config.fsync_latency,
            group_commit: self.config.group_commit,
            group_commit_window: self.config.group_commit_window,
            group_commit_bytes: self.config.group_commit_bytes,
            tracer: self.tracer.as_ref(),
            trace_on: self.trace_on,
            profile_wall: self.profile_wall,
        };
        let shard = &mut self.shards[i];
        let Some(ev) = shard.queue.pop() else {
            return;
        };
        self.now = self.now.max(ev.at);
        shard.step_event(ev, &env);
        if !self.shards[i].outgoing.is_empty() {
            self.route_from(i, None);
        }
    }

    /// Routes shard `i`'s buffered cross-shard events to their
    /// destination shards' queues. `min_at` (the epoch horizon in
    /// parallel mode) asserts the lookahead contract.
    fn route_from(&mut self, i: usize, min_at: Option<SimTime>) {
        let mut buf = std::mem::take(&mut self.route_scratch);
        std::mem::swap(&mut buf, &mut self.shards[i].outgoing);
        for ev in buf.drain(..) {
            if let Some(min_at) = min_at {
                debug_assert!(
                    ev.at >= min_at,
                    "cross-shard event at {:?} violates lookahead horizon {:?}",
                    ev.at,
                    min_at
                );
            }
            let dest = self.topology.dc_of(ev.target).0 as usize;
            debug_assert_ne!(dest, i, "same-shard event took the cross-shard path");
            self.shards[dest]
                .queue
                .push_keyed(ev.at, ev.key, ev.target, ev.kind);
        }
        std::mem::swap(&mut buf, &mut self.shards[i].outgoing);
        self.route_scratch = buf;
    }

    /// Executes a single event (the globally earliest across shards).
    /// Returns `false` when every queue is empty.
    pub fn step(&mut self) -> bool {
        match self.peek_min() {
            Some((_, _, i)) => {
                self.step_shard(i);
                true
            }
            None => false,
        }
    }

    /// Runs all events up to and including time `until`, then sets the
    /// clock to `until`. Uses the parallel epoch scheduler when
    /// [`WorldConfig::parallel`] is set (and the run is untraced);
    /// results are byte-identical either way.
    pub fn run_until(&mut self, until: SimTime) {
        if self.parallel_active() {
            self.run_epochs(until);
        } else {
            while let Some((t, _, i)) = self.peek_min() {
                if t > until {
                    break;
                }
                self.step_shard(i);
            }
        }
        self.now = self.now.max(until);
        for shard in &mut self.shards {
            shard.now = shard.now.max(until);
        }
    }

    /// The conservative parallel loop: repeatedly pick the earliest
    /// pending event time `T`, run every shard through `[T, T + Δ)` on
    /// its own thread (Δ = the inter-DC lookahead), and exchange
    /// cross-DC arrivals at the barrier.
    fn run_epochs(&mut self, until: SimTime) {
        while let Some(t0) = self.shards.iter().filter_map(|s| s.queue.peek_time()).min() {
            if t0 > until {
                break;
            }
            // Events with `at <= until` must run; the window is
            // exclusive at the horizon, hence `until + 1 µs`.
            let horizon = (t0 + self.lookahead).min(until + SimDuration(1));
            let env = Env {
                net: &self.net,
                topology: &self.topology,
                slot_of: &self.slot_of,
                service_time: self.config.service_time,
                service_ns_per_byte: self.config.service_ns_per_byte,
                coalesce: self.config.coalesce,
                coalesce_window: self.config.coalesce_window,
                fsync_latency: self.config.fsync_latency,
                group_commit: self.config.group_commit,
                group_commit_window: self.config.group_commit_window,
                group_commit_bytes: self.config.group_commit_bytes,
                tracer: self.tracer.as_ref(),
                trace_on: self.trace_on,
                profile_wall: self.profile_wall,
            };
            let shards = &mut self.shards;
            std::thread::scope(|scope| {
                for shard in shards.iter_mut() {
                    if shard.queue.peek_time().is_none_or(|t| t >= horizon) {
                        continue;
                    }
                    let env = &env;
                    scope.spawn(move || shard.run_window(horizon, env));
                }
            });
            for i in 0..self.shards.len() {
                if !self.shards[i].outgoing.is_empty() {
                    self.route_from(i, Some(horizon));
                }
            }
        }
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Drains the queue completely (tests; real experiments use
    /// [`World::run_until`] because closed-loop clients never go idle).
    /// Always sequential: quiescence detection needs the global view.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Drains the queue like [`World::run_to_quiescence`], but panics
    /// after `max_steps` events instead of livelocking on a
    /// self-perpetuating timer/message loop. The panic names the process
    /// that handled the most events (the likely offender) and the next
    /// pending event's target. Prefer this in tests: a buggy process
    /// that re-arms itself forever turns into a diagnosable failure
    /// instead of a hung run.
    ///
    /// # Panics
    ///
    /// Panics when `max_steps` events ran without reaching quiescence.
    pub fn run_to_quiescence_bounded(&mut self, max_steps: u64) {
        let mut steps = 0u64;
        let mut handled: HashMap<u32, u64> = HashMap::new();
        while let Some((_, _, i)) = self.peek_min() {
            let next = self.shards[i].queue.peek_target().expect("peeked event");
            if steps >= max_steps {
                let (&hottest, &count) = handled
                    .iter()
                    // Max count; ties break toward the smallest id so
                    // the panic message is deterministic.
                    .max_by_key(|(id, c)| (**c, std::cmp::Reverse(**id)))
                    .expect("at least one event was handled");
                panic!(
                    "run_to_quiescence_bounded: no quiescence after {max_steps} steps; \
                     process {} handled {count} of them (next event targets {})",
                    NodeId(hottest),
                    next
                );
            }
            *handled.entry(next.0).or_default() += 1;
            steps += 1;
            self.step_shard(i);
        }
    }
}

enum DispatchKind<M> {
    Start,
    Timer(M),
    Message { from: NodeId, msg: M },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkModel;
    use mdcc_common::SimDuration;

    /// Ping-pong pair recording receive times; used to verify latency and
    /// determinism.
    struct Pinger {
        peer: NodeId,
        rounds: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Process<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, 0);
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now, msg));
            if msg < self.rounds {
                ctx.send(self.peer, msg + 1);
            }
        }
    }

    fn two_node_world(seed: u64) -> (World<u32>, NodeId, NodeId) {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                ..WorldConfig::default()
            },
        );
        // Pre-assign ids: spawn order is deterministic.
        let a = NodeId(0);
        let b = NodeId(1);
        let pa = Pinger {
            peer: b,
            rounds: 10,
            log: Vec::new(),
        };
        let pb = Pinger {
            peer: a,
            rounds: 10,
            log: Vec::new(),
        };
        assert_eq!(w.spawn(DcId(0), Box::new(pa)), a);
        assert_eq!(w.spawn(DcId(1), Box::new(pb)), b);
        (w, a, b)
    }

    #[test]
    fn ping_pong_measures_one_way_latency() {
        let (mut w, _a, b) = two_node_world(1);
        w.run_to_quiescence_bounded(100_000);
        let pb: &Pinger = w.get(b).unwrap();
        // Both pingers initiate at t=0; each hop takes 50 ms one-way, so b
        // receives message k at (k+1)*50 ms.
        assert_eq!(pb.log[0].0.as_millis(), 50);
        assert_eq!(pb.log[0].1, 0);
        assert_eq!(pb.log[1].0.as_millis(), 100);
        assert_eq!(pb.log[1].1, 1);
    }

    #[test]
    fn same_seed_same_execution() {
        let (mut w1, a1, _) = two_node_world(99);
        let (mut w2, a2, _) = two_node_world(99);
        w1.run_to_quiescence_bounded(100_000);
        w2.run_to_quiescence_bounded(100_000);
        let l1 = &w1.get::<Pinger>(a1).unwrap().log;
        let l2 = &w2.get::<Pinger>(a2).unwrap().log;
        assert_eq!(l1, l2);
        assert_eq!(w1.stats(), w2.stats());
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let (mut w, a, b) = two_node_world(5);
        w.crash_node(b);
        w.run_to_quiescence_bounded(100_000);
        // b was crashed before starting: it neither sends nor receives,
        // and a's initial ping to it is dropped.
        assert!(w.get::<Pinger>(b).unwrap().log.is_empty());
        assert!(w.get::<Pinger>(a).unwrap().log.is_empty());
        assert_eq!(w.stats().dropped, 1, "a's initial ping dropped");
    }

    #[test]
    fn failed_dc_drops_inbound_only() {
        let (mut w, a, b) = two_node_world(5);
        w.fail_dc(DcId(1));
        w.run_to_quiescence_bounded(100_000);
        // b never hears a's ping; a still received b's initial ping (sent
        // from inside the failed DC, which the paper's fault model allows).
        assert!(w.get::<Pinger>(b).unwrap().log.is_empty());
        assert_eq!(w.get::<Pinger>(a).unwrap().log.len(), 1);
        w.heal_dc(DcId(1));
        assert!(!w.is_dc_down(DcId(1)));
    }

    #[test]
    fn service_time_serializes_a_hot_node() {
        struct Sink {
            handled: Vec<SimTime>,
        }
        impl Process<u32> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: u32, ctx: &mut Ctx<'_, u32>) {
                self.handled.push(ctx.now);
            }
        }
        struct Blast {
            target: NodeId,
        }
        impl Process<u32> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                for i in 0..4 {
                    ctx.send(self.target, i);
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
        }
        let net = NetworkModel::uniform(1, 0.0, 10.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 0,
                service_time: SimDuration::from_millis(2),
                service_ns_per_byte: 0,
                // Per-message service accounting is what this test pins
                // down; coalescing would batch the blast into one frame.
                coalesce: false,
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(0), Box::new(Sink { handled: vec![] }));
        let _ = w.spawn(DcId(0), Box::new(Blast { target: sink }));
        w.run_to_quiescence_bounded(100_000);
        let times: Vec<u64> = w
            .get::<Sink>(sink)
            .unwrap()
            .handled
            .iter()
            .map(|t| t.as_millis())
            .collect();
        // All four arrive at t=5 (half of 10 ms intra RTT); the 2 ms service
        // time spaces handling at 5,7,9,11.
        assert_eq!(times, vec![5, 7, 9, 11]);
    }

    /// A payload whose wire size is chosen by the test.
    #[derive(Debug, Clone, Copy)]
    struct Blob(usize);
    impl crate::process::NetMessage for Blob {
        fn wire_bytes(&self) -> usize {
            self.0
        }
        fn traffic_class(&self) -> crate::process::TrafficClass {
            crate::process::TrafficClass::Sync
        }
    }

    struct BlobSink {
        arrived: Vec<SimTime>,
    }
    impl Process<Blob> for BlobSink {
        fn on_message(&mut self, _f: NodeId, _m: Blob, ctx: &mut Ctx<'_, Blob>) {
            self.arrived.push(ctx.now);
        }
    }

    struct BlobBlast {
        target: NodeId,
        sizes: Vec<usize>,
    }
    impl Process<Blob> for BlobBlast {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
            for &s in &self.sizes {
                ctx.send(self.target, Blob(s));
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Blob, _ctx: &mut Ctx<'_, Blob>) {}
    }

    fn blob_world(sizes: Vec<usize>) -> (World<Blob>, NodeId) {
        // 1 MB/s inter-DC, 100 ms RTT, no jitter: transmission delay is
        // 1 ms per KB on top of the 50 ms propagation delay.
        let net = NetworkModel::uniform(2, 100.0, 1.0)
            .with_jitter(0.0)
            .with_inter_dc_bandwidth(1_000_000.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 1,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                // These tests measure per-message transmission and link
                // queueing; the coalescing tests below cover envelopes.
                coalesce: false,
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(1), Box::new(BlobSink { arrived: vec![] }));
        let _ = w.spawn(
            DcId(0),
            Box::new(BlobBlast {
                target: sink,
                sizes,
            }),
        );
        (w, sink)
    }

    #[test]
    fn transmission_delay_adds_to_propagation() {
        let (mut w, sink) = blob_world(vec![100_000]);
        w.run_to_quiescence_bounded(100_000);
        // 100 KB at 1 MB/s = 100 ms transmission + 50 ms propagation.
        let arrived = &w.get::<BlobSink>(sink).unwrap().arrived;
        assert_eq!(arrived.len(), 1);
        assert_eq!(arrived[0].as_millis(), 150);
    }

    #[test]
    fn bursts_queue_fifo_on_the_link() {
        // Three 100 KB messages sent at t=0 share one 1 MB/s link: they
        // serialize at 100 ms apiece instead of teleporting in parallel.
        let (mut w, sink) = blob_world(vec![100_000, 100_000, 100_000]);
        w.run_to_quiescence_bounded(100_000);
        let times: Vec<u64> = w
            .get::<BlobSink>(sink)
            .unwrap()
            .arrived
            .iter()
            .map(|t| t.as_millis())
            .collect();
        assert_eq!(times, vec![150, 250, 350]);
    }

    #[test]
    fn small_message_queues_behind_a_large_one() {
        // A 1-byte message sent right after a 500 KB one waits for the
        // link: the burst congests it.
        let (mut w, sink) = blob_world(vec![500_000, 1]);
        w.run_to_quiescence_bounded(100_000);
        let times: Vec<u64> = w
            .get::<BlobSink>(sink)
            .unwrap()
            .arrived
            .iter()
            .map(|t| t.as_millis())
            .collect();
        // First: 500 ms tx + 50 ms prop. Second: starts at 500 ms, ~0 tx.
        assert_eq!(times, vec![550, 550]);
    }

    #[test]
    fn byte_and_class_accounting() {
        use crate::process::TrafficClass;
        let (mut w, _) = blob_world(vec![100_000, 200]);
        w.run_to_quiescence_bounded(100_000);
        let stats = w.stats();
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.bytes_sent, 100_200);
        assert_eq!(
            stats.payload_msgs, 2,
            "frames == messages without coalescing"
        );
        assert_eq!(stats.class(TrafficClass::Sync).msgs, 2);
        assert_eq!(stats.class(TrafficClass::Sync).bytes, 100_200);
        assert_eq!(stats.class(TrafficClass::Sync).payloads, 2);
        assert_eq!(stats.class(TrafficClass::Protocol).msgs, 0);
    }

    #[test]
    fn per_byte_service_time_scales_with_message_size() {
        struct Sink {
            handled: Vec<SimTime>,
        }
        impl Process<Blob> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: Blob, ctx: &mut Ctx<'_, Blob>) {
                self.handled.push(ctx.now);
            }
        }
        struct Blast {
            target: NodeId,
        }
        impl Process<Blob> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
                // One large then one tiny message, same instant.
                ctx.send(self.target, Blob(100_000));
                ctx.send(self.target, Blob(1));
            }
            fn on_message(&mut self, _f: NodeId, _m: Blob, _ctx: &mut Ctx<'_, Blob>) {}
        }
        let net = NetworkModel::uniform(1, 0.0, 10.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 0,
                service_time: SimDuration::from_millis(1),
                service_ns_per_byte: 1_000, // 1 µs per byte
                coalesce: false,
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(0), Box::new(Sink { handled: vec![] }));
        let _ = w.spawn(DcId(0), Box::new(Blast { target: sink }));
        w.run_to_quiescence_bounded(100_000);
        let times: Vec<u64> = w
            .get::<Sink>(sink)
            .unwrap()
            .handled
            .iter()
            .map(|t| t.as_millis())
            .collect();
        // Both arrive at 5 ms (half the 10 ms intra RTT; tiny tx delay).
        // The 100 KB message costs 1 ms + 100 ms to handle, so the small
        // one is deferred until 106 ms.
        assert_eq!(times, vec![5, 106]);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u32>,
        }
        impl Process<u32> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let id = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.cancel_timer(id);
                ctx.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
            fn on_timer(&mut self, msg: u32, _ctx: &mut Ctx<'_, u32>) {
                self.fired.push(msg);
            }
        }
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w = World::new(net, WorldConfig::default());
        let n = w.spawn(DcId(0), Box::new(T { fired: vec![] }));
        w.run_to_quiescence_bounded(100_000);
        assert_eq!(w.get::<T>(n).unwrap().fired, vec![1, 3]);
        assert_eq!(w.stats().timers_fired, 2);
    }

    /// Counts its own timer ticks and persists each tick to its disk.
    struct Ticker {
        period: SimDuration,
        ticks: u32,
    }
    impl Process<u32> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.ticks += 1;
            if let Some(disk) = ctx.disk() {
                disk.append_wal(&[self.ticks as u8]);
            }
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn restart_replaces_the_process_and_preserves_the_disk() {
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        let n = w.spawn(
            DcId(0),
            Box::new(Ticker {
                period: SimDuration::from_millis(10),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_millis(35));
        assert_eq!(w.get::<Ticker>(n).unwrap().ticks, 3);
        assert_eq!(w.disk(n).wal(), &[1, 2, 3]);

        w.crash_node(n);
        w.run_until(SimTime::from_millis(75));
        assert_eq!(
            w.get::<Ticker>(n).unwrap().ticks,
            3,
            "dead nodes tick no timers"
        );

        w.restart_node(
            n,
            Box::new(Ticker {
                period: SimDuration::from_millis(10),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_millis(105));
        let t = w.get::<Ticker>(n).unwrap();
        assert_eq!(t.ticks, 3, "fresh process restarted its own timer chain");
        assert_eq!(
            w.disk(n).wal(),
            &[1, 2, 3, 1, 2, 3],
            "disk survived the crash; new incarnation appended"
        );
    }

    #[test]
    fn stale_incarnation_timers_never_fire() {
        // The old incarnation arms a timer far in the future; after a
        // crash + restart the timer must not leak into the new process.
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        let n = w.spawn(
            DcId(0),
            Box::new(Ticker {
                period: SimDuration::from_secs(1),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_millis(1)); // arms the first timer
        w.crash_node(n);
        w.restart_node(
            n,
            Box::new(Ticker {
                period: SimDuration::from_secs(10),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_secs(5));
        assert_eq!(
            w.get::<Ticker>(n).unwrap().ticks,
            0,
            "the 1 s timer belonged to the dead incarnation"
        );
        w.run_until(SimTime::from_secs(11));
        assert_eq!(w.get::<Ticker>(n).unwrap().ticks, 1, "own timer fires");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }

    // -----------------------------------------------------------------
    // Destination-coalesced envelopes.
    // -----------------------------------------------------------------

    /// Sends every blob in one handler, coalescing on.
    fn coalesced_blob_world(sizes: Vec<usize>) -> (World<Blob>, NodeId) {
        let net = NetworkModel::uniform(2, 100.0, 1.0)
            .with_jitter(0.0)
            .with_inter_dc_bandwidth(1_000_000.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 1,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(1), Box::new(BlobSink { arrived: vec![] }));
        let _ = w.spawn(
            DcId(0),
            Box::new(BlobBlast {
                target: sink,
                sizes,
            }),
        );
        (w, sink)
    }

    #[test]
    fn same_event_sends_coalesce_into_one_envelope() {
        let sizes = vec![100_000usize, 200, 5_000];
        let (mut w, sink) = coalesced_blob_world(sizes.clone());
        w.run_to_quiescence_bounded(100);
        let stats = w.stats();
        assert_eq!(stats.sent, 1, "three same-slot sends ship as one frame");
        assert_eq!(stats.payload_msgs, 3);
        assert_eq!(
            stats.bytes_sent,
            mdcc_common::wire::envelope_wire_bytes(sizes) as u64,
            "the envelope is billed exactly what its codec encoding costs"
        );
        assert_eq!(stats.class(TrafficClass::Sync).msgs, 1);
        assert_eq!(stats.class(TrafficClass::Sync).payloads, 3);
        // All three payloads dispatched at the envelope's arrival.
        let arrived = &w.get::<BlobSink>(sink).unwrap().arrived;
        assert_eq!(arrived.len(), 3);
        assert!(arrived.windows(2).all(|p| p[0] == p[1]));
    }

    #[test]
    fn singleton_flush_is_byte_identical_to_legacy() {
        let (mut w_on, _) = coalesced_blob_world(vec![100_000]);
        let (mut w_off, _) = blob_world(vec![100_000]);
        w_on.run_to_quiescence_bounded(100);
        w_off.run_to_quiescence_bounded(100);
        assert_eq!(
            w_on.stats(),
            w_off.stats(),
            "a lone message never pays envelope overhead"
        );
    }

    /// One u32 per timer tick — cross-event traffic for the Nagle tests.
    struct Ticker10 {
        target: NodeId,
        sent: u32,
    }
    impl Process<u32> for Ticker10 {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.target, self.sent);
            self.sent += 1;
            if self.sent < 10 {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
    }

    struct SeqSink {
        got: Vec<u32>,
    }
    impl Process<u32> for SeqSink {
        fn on_message(&mut self, _f: NodeId, m: u32, _ctx: &mut Ctx<'_, u32>) {
            self.got.push(m);
        }
    }

    #[test]
    fn nagle_window_batches_across_events_and_keeps_fifo_order() {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 9,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                coalesce: true,
                coalesce_window: SimDuration::from_millis(5),
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(1), Box::new(SeqSink { got: vec![] }));
        let _ = w.spawn(
            DcId(0),
            Box::new(Ticker10 {
                target: sink,
                sent: 0,
            }),
        );
        w.run_to_quiescence_bounded(1_000);
        let stats = w.stats();
        // Ten one-per-millisecond sends collapse into two 5-wide
        // envelopes (the window re-opens when the first flush drains).
        assert_eq!(stats.payload_msgs, 10);
        assert_eq!(stats.sent, 2, "got {} frames", stats.sent);
        assert_eq!(
            w.get::<SeqSink>(sink).unwrap().got,
            (0..10).collect::<Vec<_>>(),
            "per-(src,dst) FIFO order survives coalescing"
        );
    }

    #[test]
    fn crashed_sender_outbox_dies_unsent() {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 9,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                coalesce: true,
                coalesce_window: SimDuration::from_millis(50),
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(1), Box::new(SeqSink { got: vec![] }));
        let ticker = w.spawn(
            DcId(0),
            Box::new(Ticker10 {
                target: sink,
                sent: 0,
            }),
        );
        // Let a few sends buffer, then kill the sender before its
        // 50 ms flush fires: the outbox dies with the process.
        w.run_until(SimTime::from_millis(3));
        w.crash_node(ticker);
        w.run_to_quiescence_bounded(1_000);
        assert_eq!(w.stats().sent, 0, "buffered sends died with the sender");
        assert!(w.get::<SeqSink>(sink).unwrap().got.is_empty());
    }

    #[test]
    fn stale_flush_event_cannot_cut_a_revived_senders_window_short() {
        // A crash orphans the scheduled flush; sends buffered after the
        // revival must still get their full Nagle window, not ship at
        // the dead incarnation's deadline.
        struct LateSender {
            sink: NodeId,
        }
        impl Process<u32> for LateSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.send(self.sink, 1); // buffered; flush due at 50 ms
                ctx.set_timer(SimDuration::from_millis(40), 0);
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
            fn on_timer(&mut self, _m: u32, ctx: &mut Ctx<'_, u32>) {
                ctx.send(self.sink, 2); // post-revival batch
            }
        }
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 9,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
                coalesce: true,
                coalesce_window: SimDuration::from_millis(50),
                ..WorldConfig::default()
            },
        );
        let sink = w.spawn(DcId(1), Box::new(SeqSink { got: vec![] }));
        let sender = w.spawn(DcId(0), Box::new(LateSender { sink }));
        // Crash right after the first send buffered (killing it and
        // orphaning the 50 ms flush event), then revive: the timer at
        // 40 ms still belongs to this incarnation and sends msg 2.
        w.run_until(SimTime::from_millis(1));
        w.crash_node(sender);
        w.revive_node(sender);
        w.run_to_quiescence_bounded(1_000);
        let got = &w.get::<SeqSink>(sink).unwrap().got;
        assert_eq!(got, &[2], "only the post-revival send ships");
        // Flush at 40 + 50 = 90 ms, plus 50 ms propagation — not at the
        // stale 50 ms deadline (which would arrive at 100 < 140 only if
        // honored; equality of the full schedule pins it).
        assert_eq!(w.now(), SimTime::from_millis(140));
    }

    /// Re-arms its own timer forever — the livelock shape
    /// `run_to_quiescence_bounded` exists to diagnose.
    struct Perpetual;
    impl Process<u32> for Perpetual {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "no quiescence after 500 steps")]
    fn bounded_quiescence_names_the_livelocked_process() {
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        let _ = w.spawn(DcId(0), Box::new(Perpetual));
        w.run_to_quiescence_bounded(500);
    }

    #[test]
    fn bounded_quiescence_passes_terminating_runs() {
        let (mut w, a, _) = two_node_world(3);
        w.run_to_quiescence_bounded(10_000);
        assert_eq!(w.get::<Pinger>(a).unwrap().log.len(), 11);
    }

    // -----------------------------------------------------------------
    // The conservative parallel per-DC engine.
    // -----------------------------------------------------------------

    /// Full fingerprint of a jittered three-DC run with crash/revive
    /// faults: world stats plus every pinger's receive log.
    fn fingerprint(parallel: bool, seed: u64) -> (WorldStats, Vec<Vec<(SimTime, u32)>>) {
        // Default 0.08 jitter ON: propagation delays draw from the
        // per-node RNGs, so any scheduler divergence would cascade.
        let net = NetworkModel::uniform(3, 80.0, 1.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed,
                parallel,
                ..WorldConfig::default()
            },
        );
        let a = w.spawn(
            DcId(0),
            Box::new(Pinger {
                peer: NodeId(1),
                rounds: 500,
                log: vec![],
            }),
        );
        let b = w.spawn(
            DcId(1),
            Box::new(Pinger {
                peer: NodeId(0),
                rounds: 500,
                log: vec![],
            }),
        );
        let c = w.spawn(
            DcId(2),
            Box::new(Pinger {
                peer: NodeId(0),
                rounds: 500,
                log: vec![],
            }),
        );
        w.run_until(SimTime::from_secs(3));
        w.crash_node(c);
        w.run_until(SimTime::from_secs(4));
        w.revive_node(c);
        w.run_until(SimTime::from_secs(12));
        let logs = [a, b, c]
            .iter()
            .map(|&n| w.get::<Pinger>(n).unwrap().log.clone())
            .collect();
        (w.stats(), logs)
    }

    #[test]
    fn parallel_engine_is_byte_identical_to_sequential() {
        for seed in [1u64, 7, 0xC0FFEE] {
            let seq = fingerprint(false, seed);
            let par = fingerprint(true, seed);
            assert_eq!(seq.0, par.0, "stats diverged for seed {seed}");
            assert_eq!(seq.1, par.1, "receive logs diverged for seed {seed}");
        }
    }

    #[test]
    fn parallel_run_reports_worker_threads() {
        let net = NetworkModel::uniform(3, 80.0, 1.0);
        let w: World<u32> = World::new(
            net.clone(),
            WorldConfig {
                parallel: true,
                ..WorldConfig::default()
            },
        );
        assert!(w.parallel_active());
        assert_eq!(w.worker_threads(), 3);
        let w_seq: World<u32> = World::new(net, WorldConfig::default());
        assert!(!w_seq.parallel_active());
        assert_eq!(w_seq.worker_threads(), 1);
    }

    #[test]
    fn traced_runs_fall_back_to_the_sequential_scheduler() {
        let net = NetworkModel::uniform(3, 80.0, 1.0);
        let mut w: World<u32> = World::new(
            net,
            WorldConfig {
                parallel: true,
                ..WorldConfig::default()
            },
        );
        w.set_tracer(mdcc_trace::TraceHandle::new(mdcc_trace::TraceConfig::on()));
        assert!(
            !w.parallel_active(),
            "tracing must force the sequential merge path"
        );
    }

    /// A payload tagged with its traffic class, for the group-commit
    /// read carve-out tests.
    #[derive(Debug, Clone, Copy)]
    struct Classed(crate::process::TrafficClass);
    impl crate::process::NetMessage for Classed {
        fn wire_bytes(&self) -> usize {
            100
        }
        fn traffic_class(&self) -> crate::process::TrafficClass {
            self.0
        }
    }

    /// Appends to its WAL (opening a group-commit batch), then sends
    /// one read reply and one protocol message in the same event.
    struct BatchedWriter {
        target: NodeId,
    }
    impl Process<Classed> for BatchedWriter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Classed>) {
            if let Some(disk) = ctx.disk() {
                disk.append_wal(&[1, 2, 3]);
            }
            ctx.send(self.target, Classed(crate::process::TrafficClass::Read));
            ctx.send(self.target, Classed(crate::process::TrafficClass::Protocol));
        }
        fn on_message(&mut self, _f: NodeId, _m: Classed, _ctx: &mut Ctx<'_, Classed>) {}
    }

    struct ClassSink {
        arrived: Vec<(crate::process::TrafficClass, SimTime)>,
    }
    impl Process<Classed> for ClassSink {
        fn on_message(&mut self, _f: NodeId, m: Classed, ctx: &mut Ctx<'_, Classed>) {
            self.arrived.push((m.0, ctx.now));
        }
    }

    /// Read replies escape an open group-commit batch immediately;
    /// protocol traffic (the acks whose durability the batch covers)
    /// waits for the covering fsync — on both transports.
    #[test]
    fn group_commit_releases_reads_before_the_covering_fsync() {
        use crate::process::TrafficClass;
        for coalesce in [false, true] {
            let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
            let mut w = World::new(
                net,
                WorldConfig {
                    seed: 3,
                    service_time: SimDuration::ZERO,
                    service_ns_per_byte: 0,
                    coalesce,
                    fsync_latency: SimDuration::from_millis(5),
                    group_commit: true,
                    group_commit_window: SimDuration::from_millis(20),
                    ..WorldConfig::default()
                },
            );
            let sink = w.spawn(DcId(1), Box::new(ClassSink { arrived: vec![] }));
            let _ = w.spawn(DcId(0), Box::new(BatchedWriter { target: sink }));
            w.run_to_quiescence_bounded(100_000);
            let arrived = &w.get::<ClassSink>(sink).unwrap().arrived;
            assert_eq!(arrived.len(), 2, "coalesce={coalesce}");
            let at = |class: TrafficClass| {
                arrived
                    .iter()
                    .find(|(c, _)| *c == class)
                    .map(|(_, t)| t.as_millis())
                    .unwrap()
            };
            // One-way latency is 50 ms: the read ships at t=0 and lands
            // at 50 ms; the protocol message waits for the 20 ms window
            // deadline and lands at 70 ms.
            assert_eq!(at(TrafficClass::Read), 50, "coalesce={coalesce}");
            assert_eq!(at(TrafficClass::Protocol), 70, "coalesce={coalesce}");
        }
    }
}

//! The world: clock, event queue, processes and failure injection.

use std::collections::HashSet;

use mdcc_common::{DcId, NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::disk::Disk;
use crate::event::{EventKind, EventQueue, TimerId};
use crate::net::NetworkModel;
use crate::process::{Ctx, Effect, NetMessage, Process, TrafficClass};
use crate::topology::Topology;

/// World-level knobs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; two worlds with equal seeds and equal call sequences
    /// produce identical executions.
    pub seed: u64,
    /// Fixed floor of the CPU cost a node pays to handle one message
    /// (syscall + dispatch overhead). Messages arriving at a busy node
    /// queue FIFO behind it — this is what creates the paper's queueing
    /// effects (most visibly Megastore*'s serialization collapse).
    pub service_time: SimDuration,
    /// Per-byte handling cost in nanoseconds, added on top of the floor:
    /// a one-byte vote and a megabyte sync chunk no longer cost the node
    /// the same. The default (40 ns/byte ≈ 25 MB/s of deserialization +
    /// handling) puts a typical ~250-byte protocol message at the 50 µs
    /// the old flat model charged.
    pub service_ns_per_byte: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x4D44_4343, // "MDCC" in ASCII.
            service_time: SimDuration::from_micros(40),
            service_ns_per_byte: 40,
        }
    }
}

/// Per-traffic-class message/byte counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficTotals {
    /// Messages handed to the network.
    pub msgs: u64,
    /// Wire bytes handed to the network.
    pub bytes: u64,
}

/// Counters the world maintains about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to a live process.
    pub delivered: u64,
    /// Messages lost (network loss, dead node, failed DC).
    pub dropped: u64,
    /// Timers that fired (excludes cancelled).
    pub timers_fired: u64,
    /// Wire bytes handed to the network.
    pub bytes_sent: u64,
    /// Sent messages/bytes broken out by [`TrafficClass`] (indexed with
    /// [`TrafficClass::index`]).
    pub by_class: [TrafficTotals; TrafficClass::COUNT],
}

impl WorldStats {
    /// Totals for one traffic class.
    pub fn class(&self, class: TrafficClass) -> TrafficTotals {
        self.by_class[class.index()]
    }
}

/// A deterministic discrete-event simulation of one deployment.
pub struct World<M> {
    now: SimTime,
    queue: EventQueue<M>,
    procs: Vec<Option<Box<dyn Process<M>>>>,
    topology: Topology,
    net: NetworkModel,
    rng: SmallRng,
    busy_until: Vec<SimTime>,
    alive: Vec<bool>,
    /// Bumped on every `restart_node`; timers armed by an older
    /// incarnation are dropped when they fire.
    incarnations: Vec<u32>,
    /// Per-node durable storage; survives crash/restart.
    disks: Vec<Disk>,
    dc_down: Vec<bool>,
    cancelled: HashSet<TimerId>,
    next_timer: u64,
    service_time: SimDuration,
    service_ns_per_byte: u64,
    /// FIFO occupancy of each directed DC-pair link: the earliest time a
    /// new transmission can start on `link_free_at[from][to]`.
    link_free_at: Vec<Vec<SimTime>>,
    stats: WorldStats,
    effects_scratch: Vec<Effect<M>>,
}

impl<M: 'static> World<M> {
    /// Creates a world over `net` with the given config.
    pub fn new(net: NetworkModel, config: WorldConfig) -> Self {
        let dc_count = net.dc_count();
        Self {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            procs: Vec::new(),
            topology: Topology::new(),
            net,
            rng: SmallRng::seed_from_u64(config.seed),
            busy_until: Vec::new(),
            alive: Vec::new(),
            incarnations: Vec::new(),
            disks: Vec::new(),
            dc_down: vec![false; dc_count],
            cancelled: HashSet::new(),
            next_timer: 0,
            service_time: config.service_time,
            service_ns_per_byte: config.service_ns_per_byte,
            link_free_at: vec![vec![SimTime::ZERO; dc_count]; dc_count],
            stats: WorldStats::default(),
            effects_scratch: Vec::new(),
        }
    }

    /// CPU cost of handling one `bytes`-sized message: the fixed floor
    /// plus the per-byte deserialization cost.
    fn service_cost(&self, bytes: usize) -> SimDuration {
        let per_byte_us = (bytes as u64 * self.service_ns_per_byte + 500) / 1_000;
        self.service_time + SimDuration::from_micros(per_byte_us)
    }

    /// Spawns a process in `dc`; its `on_start` runs at the current time.
    pub fn spawn(&mut self, dc: DcId, proc_: Box<dyn Process<M>>) -> NodeId {
        assert!(
            (dc.0 as usize) < self.net.dc_count(),
            "dc outside network model"
        );
        let id = self.topology.add_node(dc);
        self.procs.push(Some(proc_));
        self.busy_until.push(SimTime::ZERO);
        self.alive.push(true);
        self.incarnations.push(0);
        self.disks.push(Disk::new());
        self.queue.push(self.now, id, EventKind::Start);
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node-to-DC mapping.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// World-level counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// Injects a message from outside the simulation (tests only; regular
    /// traffic should originate in processes).
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M)
    where
        M: NetMessage,
    {
        let bytes = msg.wire_bytes();
        self.queue
            .push(self.now, to, EventKind::Deliver { from, msg, bytes });
    }

    /// Marks a node crashed: inbound messages drop, timers are suppressed,
    /// and the process is no longer invoked.
    pub fn crash_node(&mut self, node: NodeId) {
        self.alive[node.0 as usize] = false;
    }

    /// Revives a crashed node (its state is whatever it was at crash time,
    /// mirroring a process *pause*; see [`World::restart_node`] for a real
    /// restart that loses volatile state).
    pub fn revive_node(&mut self, node: NodeId) {
        self.alive[node.0 as usize] = true;
    }

    /// Restarts a crashed node as a fresh process: the old incarnation's
    /// volatile state (including its pending timers) is gone, its disk is
    /// preserved, and `proc_` — typically rebuilt from that disk — runs
    /// `on_start` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the node is still alive; crash it first.
    pub fn restart_node(&mut self, node: NodeId, proc_: Box<dyn Process<M>>) {
        let idx = node.0 as usize;
        assert!(!self.alive[idx], "restart of a live node: crash it first");
        self.procs[idx] = Some(proc_);
        self.alive[idx] = true;
        self.incarnations[idx] += 1;
        self.busy_until[idx] = self.now;
        self.queue.push(self.now, node, EventKind::Start);
    }

    /// True if the node is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.0 as usize]
    }

    /// Read access to a node's durable disk.
    pub fn disk(&self, node: NodeId) -> &Disk {
        &self.disks[node.0 as usize]
    }

    /// Write access to a node's durable disk (harness-side setup, e.g.
    /// seeding an initial checkpoint before the simulation starts).
    pub fn disk_mut(&mut self, node: NodeId) -> &mut Disk {
        &mut self.disks[node.0 as usize]
    }

    /// Simulates a data-center outage the way the paper does (§5.3.4):
    /// nodes in `dc` stop *receiving* messages. Their timers still fire,
    /// so coordinators inside the failed DC keep timing out — which is the
    /// externally observable behaviour of an unreachable region.
    pub fn fail_dc(&mut self, dc: DcId) {
        self.dc_down[dc.0 as usize] = true;
    }

    /// Ends a data-center outage.
    pub fn heal_dc(&mut self, dc: DcId) {
        self.dc_down[dc.0 as usize] = false;
    }

    /// True while `dc` is failed.
    pub fn is_dc_down(&self, dc: DcId) -> bool {
        self.dc_down[dc.0 as usize]
    }

    /// Immutable access to a process, downcast to its concrete type.
    pub fn get<P: Process<M>>(&self, node: NodeId) -> Option<&P> {
        self.procs[node.0 as usize]
            .as_deref()
            .and_then(|p| (p as &dyn std::any::Any).downcast_ref())
    }

    /// Mutable access to a process, downcast to its concrete type.
    pub fn get_mut<P: Process<M>>(&mut self, node: NodeId) -> Option<&mut P> {
        self.procs[node.0 as usize]
            .as_deref_mut()
            .and_then(|p| (p as &mut dyn std::any::Any).downcast_mut())
    }

    /// Executes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(mut ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        let target = ev.target;
        let idx = target.0 as usize;
        match ev.kind {
            EventKind::Start => {
                self.now = ev.at;
                if self.alive[idx] {
                    self.dispatch(target, DispatchKind::Start);
                }
            }
            EventKind::Timer {
                id,
                msg,
                incarnation,
            } => {
                self.now = ev.at;
                if self.cancelled.remove(&id)
                    || !self.alive[idx]
                    || incarnation != self.incarnations[idx]
                {
                    return true;
                }
                self.stats.timers_fired += 1;
                self.dispatch(target, DispatchKind::Timer(msg));
            }
            EventKind::Deliver { from, msg, bytes } => {
                if !self.alive[idx] || self.dc_down[self.topology.dc_of(target).0 as usize] {
                    self.now = ev.at;
                    self.stats.dropped += 1;
                    return true;
                }
                // Model per-message CPU cost: a busy node defers handling.
                let busy = self.busy_until[idx];
                if busy > ev.at {
                    ev.at = busy;
                    ev.kind = EventKind::Deliver { from, msg, bytes };
                    self.queue.push_deferred(ev);
                    return true;
                }
                self.now = ev.at;
                self.busy_until[idx] = ev.at + self.service_cost(bytes);
                self.stats.delivered += 1;
                self.dispatch(target, DispatchKind::Message { from, msg });
            }
        }
        true
    }

    /// Runs all events up to and including time `until`, then sets the
    /// clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Drains the queue completely (tests; real experiments use
    /// [`World::run_until`] because closed-loop clients never go idle).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    fn dispatch(&mut self, target: NodeId, kind: DispatchKind<M>) {
        let idx = target.0 as usize;
        // Take the process out so effects application can borrow `self`.
        let Some(mut proc_) = self.procs[idx].take() else {
            return;
        };
        let mut effects = std::mem::take(&mut self.effects_scratch);
        {
            let mut ctx = Ctx::with_disk(
                self.now,
                target,
                &mut self.rng,
                &mut effects,
                &mut self.next_timer,
                &mut self.disks[idx],
            );
            match kind {
                DispatchKind::Start => proc_.on_start(&mut ctx),
                DispatchKind::Timer(msg) => proc_.on_timer(msg, &mut ctx),
                DispatchKind::Message { from, msg } => proc_.on_message(from, msg, &mut ctx),
            }
        }
        self.procs[idx] = Some(proc_);
        for effect in effects.drain(..) {
            self.apply_effect(target, effect);
        }
        self.effects_scratch = effects;
    }

    fn apply_effect(&mut self, source: NodeId, effect: Effect<M>) {
        match effect {
            Effect::Send {
                to,
                msg,
                bytes,
                class,
            } => {
                self.stats.sent += 1;
                self.stats.bytes_sent += bytes as u64;
                let totals = &mut self.stats.by_class[class.index()];
                totals.msgs += 1;
                totals.bytes += bytes as u64;
                let from_dc = self.topology.dc_of(source);
                let to_dc = self.topology.dc_of(to);
                // Transmission: the message occupies the directed DC-pair
                // link for `bytes / bandwidth`, FIFO behind whatever is
                // already on it — a burst congests the link instead of
                // teleporting. Lost messages occupy the link too: the
                // sender transmits the bytes before the network eats them,
                // so billed bytes and link congestion stay consistent.
                let tx = self.net.transmission_delay(from_dc, to_dc, bytes);
                let link = &mut self.link_free_at[from_dc.0 as usize][to_dc.0 as usize];
                let start = (*link).max(self.now);
                *link = start + tx;
                match self.net.sample_delay(from_dc, to_dc, &mut self.rng) {
                    Some(propagation) => {
                        self.queue.push(
                            start + tx + propagation,
                            to,
                            EventKind::Deliver {
                                from: source,
                                msg,
                                bytes,
                            },
                        );
                    }
                    None => self.stats.dropped += 1,
                }
            }
            Effect::SetTimer { id, delay, msg } => {
                let incarnation = self.incarnations[source.0 as usize];
                self.queue.push(
                    self.now + delay,
                    source,
                    EventKind::Timer {
                        id,
                        msg,
                        incarnation,
                    },
                );
            }
            Effect::CancelTimer(id) => {
                self.cancelled.insert(id);
            }
        }
    }
}

enum DispatchKind<M> {
    Start,
    Timer(M),
    Message { from: NodeId, msg: M },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkModel;
    use mdcc_common::SimDuration;

    /// Ping-pong pair recording receive times; used to verify latency and
    /// determinism.
    struct Pinger {
        peer: NodeId,
        rounds: u32,
        log: Vec<(SimTime, u32)>,
    }

    impl Process<u32> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, 0);
        }
        fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.log.push((ctx.now, msg));
            if msg < self.rounds {
                ctx.send(self.peer, msg + 1);
            }
        }
    }

    fn two_node_world(seed: u64) -> (World<u32>, NodeId, NodeId) {
        let net = NetworkModel::uniform(2, 100.0, 1.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
            },
        );
        // Pre-assign ids: spawn order is deterministic.
        let a = NodeId(0);
        let b = NodeId(1);
        let pa = Pinger {
            peer: b,
            rounds: 10,
            log: Vec::new(),
        };
        let pb = Pinger {
            peer: a,
            rounds: 10,
            log: Vec::new(),
        };
        assert_eq!(w.spawn(DcId(0), Box::new(pa)), a);
        assert_eq!(w.spawn(DcId(1), Box::new(pb)), b);
        (w, a, b)
    }

    #[test]
    fn ping_pong_measures_one_way_latency() {
        let (mut w, _a, b) = two_node_world(1);
        w.run_to_quiescence();
        let pb: &Pinger = w.get(b).unwrap();
        // Both pingers initiate at t=0; each hop takes 50 ms one-way, so b
        // receives message k at (k+1)*50 ms.
        assert_eq!(pb.log[0].0.as_millis(), 50);
        assert_eq!(pb.log[0].1, 0);
        assert_eq!(pb.log[1].0.as_millis(), 100);
        assert_eq!(pb.log[1].1, 1);
    }

    #[test]
    fn same_seed_same_execution() {
        let (mut w1, a1, _) = two_node_world(99);
        let (mut w2, a2, _) = two_node_world(99);
        w1.run_to_quiescence();
        w2.run_to_quiescence();
        let l1 = &w1.get::<Pinger>(a1).unwrap().log;
        let l2 = &w2.get::<Pinger>(a2).unwrap().log;
        assert_eq!(l1, l2);
        assert_eq!(w1.stats(), w2.stats());
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let (mut w, a, b) = two_node_world(5);
        w.crash_node(b);
        w.run_to_quiescence();
        // b was crashed before starting: it neither sends nor receives,
        // and a's initial ping to it is dropped.
        assert!(w.get::<Pinger>(b).unwrap().log.is_empty());
        assert!(w.get::<Pinger>(a).unwrap().log.is_empty());
        assert_eq!(w.stats().dropped, 1, "a's initial ping dropped");
    }

    #[test]
    fn failed_dc_drops_inbound_only() {
        let (mut w, a, b) = two_node_world(5);
        w.fail_dc(DcId(1));
        w.run_to_quiescence();
        // b never hears a's ping; a still received b's initial ping (sent
        // from inside the failed DC, which the paper's fault model allows).
        assert!(w.get::<Pinger>(b).unwrap().log.is_empty());
        assert_eq!(w.get::<Pinger>(a).unwrap().log.len(), 1);
        w.heal_dc(DcId(1));
        assert!(!w.is_dc_down(DcId(1)));
    }

    #[test]
    fn service_time_serializes_a_hot_node() {
        struct Sink {
            handled: Vec<SimTime>,
        }
        impl Process<u32> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: u32, ctx: &mut Ctx<'_, u32>) {
                self.handled.push(ctx.now);
            }
        }
        struct Blast {
            target: NodeId,
        }
        impl Process<u32> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                for i in 0..4 {
                    ctx.send(self.target, i);
                }
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
        }
        let net = NetworkModel::uniform(1, 0.0, 10.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 0,
                service_time: SimDuration::from_millis(2),
                service_ns_per_byte: 0,
            },
        );
        let sink = w.spawn(DcId(0), Box::new(Sink { handled: vec![] }));
        let _ = w.spawn(DcId(0), Box::new(Blast { target: sink }));
        w.run_to_quiescence();
        let times: Vec<u64> = w
            .get::<Sink>(sink)
            .unwrap()
            .handled
            .iter()
            .map(|t| t.as_millis())
            .collect();
        // All four arrive at t=5 (half of 10 ms intra RTT); the 2 ms service
        // time spaces handling at 5,7,9,11.
        assert_eq!(times, vec![5, 7, 9, 11]);
    }

    /// A payload whose wire size is chosen by the test.
    #[derive(Debug, Clone, Copy)]
    struct Blob(usize);
    impl crate::process::NetMessage for Blob {
        fn wire_bytes(&self) -> usize {
            self.0
        }
        fn traffic_class(&self) -> crate::process::TrafficClass {
            crate::process::TrafficClass::Sync
        }
    }

    struct BlobSink {
        arrived: Vec<SimTime>,
    }
    impl Process<Blob> for BlobSink {
        fn on_message(&mut self, _f: NodeId, _m: Blob, ctx: &mut Ctx<'_, Blob>) {
            self.arrived.push(ctx.now);
        }
    }

    struct BlobBlast {
        target: NodeId,
        sizes: Vec<usize>,
    }
    impl Process<Blob> for BlobBlast {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
            for &s in &self.sizes {
                ctx.send(self.target, Blob(s));
            }
        }
        fn on_message(&mut self, _f: NodeId, _m: Blob, _ctx: &mut Ctx<'_, Blob>) {}
    }

    fn blob_world(sizes: Vec<usize>) -> (World<Blob>, NodeId) {
        // 1 MB/s inter-DC, 100 ms RTT, no jitter: transmission delay is
        // 1 ms per KB on top of the 50 ms propagation delay.
        let net = NetworkModel::uniform(2, 100.0, 1.0)
            .with_jitter(0.0)
            .with_inter_dc_bandwidth(1_000_000.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 1,
                service_time: SimDuration::ZERO,
                service_ns_per_byte: 0,
            },
        );
        let sink = w.spawn(DcId(1), Box::new(BlobSink { arrived: vec![] }));
        let _ = w.spawn(
            DcId(0),
            Box::new(BlobBlast {
                target: sink,
                sizes,
            }),
        );
        (w, sink)
    }

    #[test]
    fn transmission_delay_adds_to_propagation() {
        let (mut w, sink) = blob_world(vec![100_000]);
        w.run_to_quiescence();
        // 100 KB at 1 MB/s = 100 ms transmission + 50 ms propagation.
        let arrived = &w.get::<BlobSink>(sink).unwrap().arrived;
        assert_eq!(arrived.len(), 1);
        assert_eq!(arrived[0].as_millis(), 150);
    }

    #[test]
    fn bursts_queue_fifo_on_the_link() {
        // Three 100 KB messages sent at t=0 share one 1 MB/s link: they
        // serialize at 100 ms apiece instead of teleporting in parallel.
        let (mut w, sink) = blob_world(vec![100_000, 100_000, 100_000]);
        w.run_to_quiescence();
        let times: Vec<u64> = w
            .get::<BlobSink>(sink)
            .unwrap()
            .arrived
            .iter()
            .map(|t| t.as_millis())
            .collect();
        assert_eq!(times, vec![150, 250, 350]);
    }

    #[test]
    fn small_message_queues_behind_a_large_one() {
        // A 1-byte message sent right after a 500 KB one waits for the
        // link: the burst congests it.
        let (mut w, sink) = blob_world(vec![500_000, 1]);
        w.run_to_quiescence();
        let times: Vec<u64> = w
            .get::<BlobSink>(sink)
            .unwrap()
            .arrived
            .iter()
            .map(|t| t.as_millis())
            .collect();
        // First: 500 ms tx + 50 ms prop. Second: starts at 500 ms, ~0 tx.
        assert_eq!(times, vec![550, 550]);
    }

    #[test]
    fn byte_and_class_accounting() {
        use crate::process::TrafficClass;
        let (mut w, _) = blob_world(vec![100_000, 200]);
        w.run_to_quiescence();
        let stats = w.stats();
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.bytes_sent, 100_200);
        assert_eq!(stats.class(TrafficClass::Sync).msgs, 2);
        assert_eq!(stats.class(TrafficClass::Sync).bytes, 100_200);
        assert_eq!(stats.class(TrafficClass::Protocol).msgs, 0);
    }

    #[test]
    fn per_byte_service_time_scales_with_message_size() {
        struct Sink {
            handled: Vec<SimTime>,
        }
        impl Process<Blob> for Sink {
            fn on_message(&mut self, _f: NodeId, _m: Blob, ctx: &mut Ctx<'_, Blob>) {
                self.handled.push(ctx.now);
            }
        }
        struct Blast {
            target: NodeId,
        }
        impl Process<Blob> for Blast {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Blob>) {
                // One large then one tiny message, same instant.
                ctx.send(self.target, Blob(100_000));
                ctx.send(self.target, Blob(1));
            }
            fn on_message(&mut self, _f: NodeId, _m: Blob, _ctx: &mut Ctx<'_, Blob>) {}
        }
        let net = NetworkModel::uniform(1, 0.0, 10.0).with_jitter(0.0);
        let mut w = World::new(
            net,
            WorldConfig {
                seed: 0,
                service_time: SimDuration::from_millis(1),
                service_ns_per_byte: 1_000, // 1 µs per byte
            },
        );
        let sink = w.spawn(DcId(0), Box::new(Sink { handled: vec![] }));
        let _ = w.spawn(DcId(0), Box::new(Blast { target: sink }));
        w.run_to_quiescence();
        let times: Vec<u64> = w
            .get::<Sink>(sink)
            .unwrap()
            .handled
            .iter()
            .map(|t| t.as_millis())
            .collect();
        // Both arrive at 5 ms (half the 10 ms intra RTT; tiny tx delay).
        // The 100 KB message costs 1 ms + 100 ms to handle, so the small
        // one is deferred until 106 ms.
        assert_eq!(times, vec![5, 106]);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct T {
            fired: Vec<u32>,
        }
        impl Process<u32> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let id = ctx.set_timer(SimDuration::from_millis(20), 2);
                ctx.cancel_timer(id);
                ctx.set_timer(SimDuration::from_millis(30), 3);
            }
            fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
            fn on_timer(&mut self, msg: u32, _ctx: &mut Ctx<'_, u32>) {
                self.fired.push(msg);
            }
        }
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w = World::new(net, WorldConfig::default());
        let n = w.spawn(DcId(0), Box::new(T { fired: vec![] }));
        w.run_to_quiescence();
        assert_eq!(w.get::<T>(n).unwrap().fired, vec![1, 3]);
        assert_eq!(w.stats().timers_fired, 2);
    }

    /// Counts its own timer ticks and persists each tick to its disk.
    struct Ticker {
        period: SimDuration,
        ticks: u32,
    }
    impl Process<u32> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
        fn on_timer(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
            self.ticks += 1;
            if let Some(disk) = ctx.disk() {
                disk.append_wal(&[self.ticks as u8]);
            }
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn restart_replaces_the_process_and_preserves_the_disk() {
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        let n = w.spawn(
            DcId(0),
            Box::new(Ticker {
                period: SimDuration::from_millis(10),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_millis(35));
        assert_eq!(w.get::<Ticker>(n).unwrap().ticks, 3);
        assert_eq!(w.disk(n).wal(), &[1, 2, 3]);

        w.crash_node(n);
        w.run_until(SimTime::from_millis(75));
        assert_eq!(
            w.get::<Ticker>(n).unwrap().ticks,
            3,
            "dead nodes tick no timers"
        );

        w.restart_node(
            n,
            Box::new(Ticker {
                period: SimDuration::from_millis(10),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_millis(105));
        let t = w.get::<Ticker>(n).unwrap();
        assert_eq!(t.ticks, 3, "fresh process restarted its own timer chain");
        assert_eq!(
            w.disk(n).wal(),
            &[1, 2, 3, 1, 2, 3],
            "disk survived the crash; new incarnation appended"
        );
    }

    #[test]
    fn stale_incarnation_timers_never_fire() {
        // The old incarnation arms a timer far in the future; after a
        // crash + restart the timer must not leak into the new process.
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        let n = w.spawn(
            DcId(0),
            Box::new(Ticker {
                period: SimDuration::from_secs(1),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_millis(1)); // arms the first timer
        w.crash_node(n);
        w.restart_node(
            n,
            Box::new(Ticker {
                period: SimDuration::from_secs(10),
                ticks: 0,
            }),
        );
        w.run_until(SimTime::from_secs(5));
        assert_eq!(
            w.get::<Ticker>(n).unwrap().ticks,
            0,
            "the 1 s timer belonged to the dead incarnation"
        );
        w.run_until(SimTime::from_secs(11));
        assert_eq!(w.get::<Ticker>(n).unwrap().ticks, 1, "own timer fires");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let net = NetworkModel::uniform(1, 0.0, 1.0);
        let mut w: World<u32> = World::new(net, WorldConfig::default());
        w.run_until(SimTime::from_secs(5));
        assert_eq!(w.now(), SimTime::from_secs(5));
    }
}

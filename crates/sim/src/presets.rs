//! Canned topologies, most importantly the paper's five EC2 regions.

use mdcc_common::DcId;

use crate::net::{LinkSpec, NetworkModel};

/// Index of US-West (N. California) in [`ec2_five_dc`].
pub const US_WEST: DcId = DcId(0);
/// Index of US-East (Virginia) in [`ec2_five_dc`].
pub const US_EAST: DcId = DcId(1);
/// Index of EU (Ireland) in [`ec2_five_dc`].
pub const EU_IRELAND: DcId = DcId(2);
/// Index of Asia-Pacific (Singapore) in [`ec2_five_dc`].
pub const AP_SINGAPORE: DcId = DcId(3);
/// Index of Asia-Pacific (Tokyo) in [`ec2_five_dc`].
pub const AP_TOKYO: DcId = DcId(4);

/// Human-readable names of the five regions, indexed by [`DcId`].
pub const DC_NAMES: [&str; 5] = [
    "us-west",
    "us-east",
    "eu-ireland",
    "ap-singapore",
    "ap-tokyo",
];

/// The five-data-center network of the paper's evaluation (§5.1): US West
/// (N. California), US East (Virginia), EU (Ireland), AP (Singapore) and
/// AP (Tokyo), with 2012-era inter-region round-trip times.
///
/// The exact milliseconds are estimates from contemporaneous measurements;
/// what matters for reproduction is the *ordering* of distances (e.g.
/// US-East is US-West's closest peer, so killing it in the Figure 8
/// experiment forces quorums to reach farther).
pub fn ec2_five_dc() -> NetworkModel {
    let links = [
        LinkSpec::new(0, 1, 80.0),  // us-west  <-> us-east
        LinkSpec::new(0, 2, 160.0), // us-west  <-> eu
        LinkSpec::new(0, 3, 190.0), // us-west  <-> singapore
        LinkSpec::new(0, 4, 120.0), // us-west  <-> tokyo
        LinkSpec::new(1, 2, 90.0),  // us-east  <-> eu
        LinkSpec::new(1, 3, 240.0), // us-east  <-> singapore
        LinkSpec::new(1, 4, 170.0), // us-east  <-> tokyo
        LinkSpec::new(2, 3, 250.0), // eu       <-> singapore
        LinkSpec::new(2, 4, 270.0), // eu       <-> tokyo
        LinkSpec::new(3, 4, 80.0),  // singapore<-> tokyo
    ];
    NetworkModel::from_links(5, &links, 1.0)
}

/// RTT from `dc` to every region, sorted ascending — handy for reasoning
/// about quorum latencies in tests and reports.
pub fn sorted_rtts_from(net: &NetworkModel, dc: DcId) -> Vec<(DcId, f64)> {
    let mut v: Vec<(DcId, f64)> = (0..net.dc_count() as u8)
        .map(|d| (DcId(d), net.base_rtt_ms(dc, DcId(d))))
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_regions_with_expected_neighbours() {
        let net = ec2_five_dc();
        assert_eq!(net.dc_count(), 5);
        // US-East is US-West's nearest remote region (drives Figure 8).
        let order = sorted_rtts_from(&net, US_WEST);
        assert_eq!(order[0].0, US_WEST, "self is nearest");
        assert_eq!(order[1].0, US_EAST);
        assert_eq!(order[2].0, AP_TOKYO);
    }

    #[test]
    fn fast_quorum_from_us_west_is_the_eu_link() {
        // A fast quorum (4/5) as seen from US-West needs the 4th-closest
        // response: CA(1) < VA(80) < JP(120) < IE(160) — so ~160 ms RTT.
        let net = ec2_five_dc();
        let order = sorted_rtts_from(&net, US_WEST);
        assert_eq!(order[3].0, EU_IRELAND);
        assert_eq!(order[3].1, 160.0);
    }

    #[test]
    fn matrix_is_symmetric() {
        let net = ec2_five_dc();
        for a in 0..5u8 {
            for b in 0..5u8 {
                assert_eq!(
                    net.base_rtt_ms(DcId(a), DcId(b)),
                    net.base_rtt_ms(DcId(b), DcId(a))
                );
            }
        }
    }
}

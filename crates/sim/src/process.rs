//! The sans-IO process interface.
//!
//! A [`Process`] is a deterministic state machine: the world hands it a
//! message or timer plus a [`Ctx`], and the process responds by recording
//! *effects* (sends, timers) on the context. Effects are applied by the
//! world after the handler returns, so handlers never touch the event
//! queue directly and protocol code contains no runtime dependencies.

use std::any::Any;

use mdcc_common::{NodeId, SimDuration, SimTime};
use rand::rngs::SmallRng;

use crate::disk::Disk;
use crate::event::TimerId;

/// How a message is accounted in byte/traffic statistics. The transport
/// itself treats every class identically — the split exists so reports
/// can answer "how much of the wire went to recovery sync versus the
/// commit protocol versus reads".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Commit-protocol traffic: proposals, votes, Phase1/2, visibility.
    Protocol,
    /// Read requests and responses.
    Read,
    /// Anti-entropy / recovery-sync traffic.
    Sync,
    /// Divergence-repair traffic: cstruct pulls and their full-state
    /// responses when a delta vote's digest mismatches.
    Repair,
}

impl TrafficClass {
    /// Number of classes (sizing per-class counter arrays).
    pub const COUNT: usize = 4;

    /// Dense index for per-class counter arrays.
    pub const fn index(self) -> usize {
        match self {
            TrafficClass::Protocol => 0,
            TrafficClass::Read => 1,
            TrafficClass::Sync => 2,
            TrafficClass::Repair => 3,
        }
    }
}

/// A message type with a byte-accurate wire size.
///
/// Every payload sent through [`Ctx::send`] must know what it costs on
/// the wire: the network model charges transmission delay proportional
/// to `wire_bytes` and the receiver pays a per-byte deserialization
/// cost. Implementations should report the *framed* size (payload plus
/// frame header) of the message's canonical binary encoding.
pub trait NetMessage {
    /// Total bytes this message occupies on the wire.
    fn wire_bytes(&self) -> usize;

    /// Which traffic class the message is accounted under. Deliberately
    /// has no default body: every message schema must classify each
    /// variant explicitly, so new messages cannot silently fall into a
    /// catch-all class and skew per-class byte accounting.
    fn traffic_class(&self) -> TrafficClass;
}

// Plain payloads used by simulator-level tests and benches.
impl NetMessage for u32 {
    fn wire_bytes(&self) -> usize {
        4
    }
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Protocol
    }
}

impl NetMessage for u64 {
    fn wire_bytes(&self) -> usize {
        8
    }
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Protocol
    }
}

impl NetMessage for &'static str {
    fn wire_bytes(&self) -> usize {
        self.len()
    }
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Protocol
    }
}

/// An action a process asked the world to perform.
#[derive(Debug)]
pub enum Effect<M> {
    /// Send `msg` to `to` over the simulated network.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
        /// Wire size of `msg`, captured at send time.
        bytes: usize,
        /// Traffic class of `msg`, captured at send time.
        class: TrafficClass,
    },
    /// Deliver `msg` back to the process after `delay`.
    SetTimer {
        /// Cancellation handle.
        id: TimerId,
        /// Delay from now.
        delay: SimDuration,
        /// Payload passed to `on_timer`.
        msg: M,
    },
    /// Suppress a previously set timer.
    CancelTimer(TimerId),
}

/// Handler context: the process's window onto the world for one event.
pub struct Ctx<'a, M> {
    /// Current virtual time.
    pub now: SimTime,
    /// The id of the process being invoked.
    pub self_id: NodeId,
    /// Seeded RNG for protocol-level randomness (backoff jitter etc.).
    pub rng: &'a mut SmallRng,
    effects: &'a mut Vec<Effect<M>>,
    next_timer: &'a mut u64,
    disk: Option<&'a mut Disk>,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context with no durable disk attached; used by tests
    /// that drive a process by hand. The world itself always attaches the
    /// process's disk via [`Ctx::with_disk`].
    pub fn new(
        now: SimTime,
        self_id: NodeId,
        rng: &'a mut SmallRng,
        effects: &'a mut Vec<Effect<M>>,
        next_timer: &'a mut u64,
    ) -> Self {
        Self {
            now,
            self_id,
            rng,
            effects,
            next_timer,
            disk: None,
        }
    }

    /// Creates a context bound to the process's durable disk.
    pub fn with_disk(
        now: SimTime,
        self_id: NodeId,
        rng: &'a mut SmallRng,
        effects: &'a mut Vec<Effect<M>>,
        next_timer: &'a mut u64,
        disk: &'a mut Disk,
    ) -> Self {
        Self {
            now,
            self_id,
            rng,
            effects,
            next_timer,
            disk: Some(disk),
        }
    }

    /// The process's durable disk, if one is attached. Writes to it
    /// survive [`crate::World::crash_node`] / [`crate::World::restart_node`].
    pub fn disk(&mut self) -> Option<&mut Disk> {
        self.disk.as_deref_mut()
    }

    /// Sends `msg` to `to`; latency, bandwidth and loss are the network
    /// model's call. The message's wire size is captured here so the
    /// transport can charge transmission delay and queueing for it.
    ///
    /// With the coalescing transport (`WorldConfig::coalesce`, the
    /// default) the send lands in the world's per-(destination,
    /// traffic-class) outbox and ships — possibly batched with other
    /// same-slot sends into one envelope frame — when the world flushes
    /// at the end of this event (or after the configured Nagle window).
    /// Per-(src, dst, class) send order is preserved either way;
    /// same-destination sends of different classes may reorder, exactly
    /// as network jitter already can.
    pub fn send(&mut self, to: NodeId, msg: M)
    where
        M: NetMessage,
    {
        let bytes = msg.wire_bytes();
        let class = msg.traffic_class();
        // Every protocol message frames at least a header; a zero-byte
        // size means a `NetMessage` impl forgot to account the payload
        // and the transport would carry it for free.
        debug_assert!(
            bytes > 0,
            "message reports zero wire bytes — unaccounted NetMessage impl"
        );
        self.effects.push(Effect::Send {
            to,
            msg,
            bytes,
            class,
        });
    }

    /// Schedules `msg` to be delivered to `on_timer` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, msg: M) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, delay, msg });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }
}

/// A simulated node: storage node, app server or workload client.
///
/// The `Any` supertrait lets the harness downcast processes back to their
/// concrete type after a run to harvest metrics; `Send` lets the parallel
/// per-DC runner move whole shards (and the processes in them) across
/// worker threads at epoch barriers.
pub trait Process<M>: Any + Send {
    /// Invoked once when the node is spawned.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Invoked for every delivered network message.
    fn on_message(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Invoked when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _msg: M, _ctx: &mut Ctx<'_, M>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Echo;
    impl Process<u32> for Echo {
        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
            ctx.send(from, msg + 1);
        }
    }

    #[test]
    fn ctx_records_effects_in_order() {
        let mut effects = Vec::new();
        let mut next_timer = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId(0),
            &mut rng,
            &mut effects,
            &mut next_timer,
        );
        ctx.send(NodeId(1), 10u32);
        let t = ctx.set_timer(SimDuration::from_millis(5), 20);
        ctx.cancel_timer(t);
        assert_eq!(effects.len(), 3);
        assert!(matches!(
            effects[0],
            Effect::Send {
                to: NodeId(1),
                msg: 10,
                bytes: 4,
                class: TrafficClass::Protocol,
            }
        ));
        assert!(matches!(
            effects[1],
            Effect::SetTimer {
                id: TimerId(0),
                msg: 20,
                ..
            }
        ));
        assert!(matches!(effects[2], Effect::CancelTimer(TimerId(0))));
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut effects = Vec::new();
        let mut next_timer = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId(0),
            &mut rng,
            &mut effects,
            &mut next_timer,
        );
        let a = ctx.set_timer(SimDuration::from_millis(1), 1);
        let b = ctx.set_timer(SimDuration::from_millis(1), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn handler_can_be_driven_by_hand() {
        let mut echo = Echo;
        let mut effects = Vec::new();
        let mut next_timer = 0;
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId(5),
            &mut rng,
            &mut effects,
            &mut next_timer,
        );
        echo.on_message(NodeId(9), 41, &mut ctx);
        assert!(matches!(
            effects[0],
            Effect::Send {
                to: NodeId(9),
                msg: 42,
                ..
            }
        ));
    }
}

//! Deterministic discrete-event simulation of a multi-data-center deployment.
//!
//! The paper evaluates MDCC on five Amazon EC2 regions. This crate replaces
//! that testbed with a seeded discrete-event simulator:
//!
//! * [`world::World`] owns the virtual clock, the event queue and every
//!   simulated process;
//! * [`process::Process`] is the sans-IO handler interface protocol crates
//!   implement (message in → effects out);
//! * [`net::NetworkModel`] samples message latencies from an inter-DC
//!   round-trip matrix with lognormal jitter and injects losses;
//! * [`topology::Topology`] maps nodes to data centers;
//! * [`presets`] ships the 2012-era EC2 latency matrix used by every
//!   experiment.
//!
//! Determinism: given the same seed and the same sequence of API calls, a
//! `World` produces byte-identical traces. Ties in the event queue are
//! broken by intrinsic event keys (cause time, emitting node, per-node
//! emit counter), and all randomness flows from per-node
//! [`rand::rngs::SmallRng`]s derived from the world seed — properties
//! that hold whether the world runs its sequential k-way merge or the
//! conservative parallel per-DC engine (`WorldConfig::parallel`), which
//! is guaranteed byte-identical to sequential execution.

pub mod disk;
pub mod event;
pub mod net;
pub mod presets;
pub mod process;
pub mod topology;
pub mod world;

pub use disk::{Disk, DiskStats};
pub use event::{Event, EventKey, EventKind, EventQueue, TimerId};
pub use net::{LinkSpec, NetworkModel, DEFAULT_INTER_DC_BANDWIDTH, DEFAULT_INTRA_DC_BANDWIDTH};
pub use process::{Ctx, NetMessage, Process, TrafficClass};
pub use topology::Topology;
pub use world::{ProfileEntry, TrafficTotals, World, WorldConfig, WorldStats};

//! The simulated durable disk.
//!
//! Every process the world spawns owns one [`Disk`]: a byte-level store
//! with an append-only write-ahead-log area and a single snapshot blob.
//! [`crate::World::crash_node`] destroys a process's volatile state but
//! leaves its disk untouched; [`crate::World::restart_node`] hands the
//! replacement process whatever the old incarnation persisted.
//!
//! The disk is deliberately dumb — bytes in, bytes out. What the bytes
//! mean (WAL framing, snapshot encoding) is the `mdcc-recovery` crate's
//! business, keeping the simulator protocol-agnostic.

/// Write counters a disk keeps about itself (metrics/reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// WAL appends performed.
    pub wal_appends: u64,
    /// Total WAL bytes ever appended (survives truncation).
    pub wal_bytes_written: u64,
    /// Snapshots installed.
    pub snapshots_installed: u64,
    /// Explicit flushes via [`Disk::fsync`] (group commit); zero when
    /// the world treats every append as synchronously durable.
    pub fsyncs: u64,
}

/// One process's durable storage: a WAL area plus a snapshot blob.
#[derive(Debug, Clone, Default)]
pub struct Disk {
    snapshot: Vec<u8>,
    wal: Vec<u8>,
    /// WAL bytes known durable. Only meaningful while the world runs
    /// the group-commit discipline (every append schedules a covering
    /// [`Disk::fsync`]); otherwise appends are treated as write-through
    /// and this watermark is never consulted.
    synced_len: usize,
    stats: DiskStats,
}

impl Disk {
    /// An empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes to the WAL area (the caller frames its own records).
    pub fn append_wal(&mut self, bytes: &[u8]) {
        self.wal.extend_from_slice(bytes);
        self.stats.wal_appends += 1;
        self.stats.wal_bytes_written += bytes.len() as u64;
    }

    /// The current WAL contents, oldest byte first.
    pub fn wal(&self) -> &[u8] {
        &self.wal
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Marks every appended WAL byte durable (the covering flush of a
    /// group-commit batch).
    pub fn fsync(&mut self) {
        self.synced_len = self.wal.len();
        self.stats.fsyncs += 1;
    }

    /// Bytes appended since the last [`Disk::fsync`].
    pub fn unsynced_bytes(&self) -> usize {
        self.wal.len() - self.synced_len
    }

    /// True when appends are awaiting their covering fsync.
    pub fn has_unsynced(&self) -> bool {
        self.wal.len() > self.synced_len
    }

    /// Truncates the WAL to its durable prefix — what a power loss does
    /// to a write-back cache. Only the world's crash path calls this,
    /// and only when the group-commit discipline is active (otherwise
    /// every append was synchronously durable and nothing is lost).
    pub fn discard_unsynced(&mut self) {
        self.wal.truncate(self.synced_len);
    }

    /// Atomically replaces the snapshot and truncates the WAL — the
    /// checkpoint/compaction step. (A real system writes the snapshot,
    /// fsyncs, then truncates; the simulated disk is never torn.)
    pub fn install_snapshot(&mut self, snapshot: Vec<u8>) {
        self.snapshot = snapshot;
        self.wal.clear();
        self.synced_len = 0;
        self.stats.snapshots_installed += 1;
    }

    /// The current snapshot blob (empty if none was ever installed).
    pub fn snapshot(&self) -> &[u8] {
        &self.snapshot
    }

    /// True when nothing was ever persisted.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty() && self.wal.is_empty()
    }

    /// Write counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_accumulate_and_count() {
        let mut d = Disk::new();
        assert!(d.is_empty());
        d.append_wal(b"ab");
        d.append_wal(b"cd");
        assert_eq!(d.wal(), b"abcd");
        assert_eq!(d.wal_len(), 4);
        assert_eq!(d.stats().wal_appends, 2);
        assert_eq!(d.stats().wal_bytes_written, 4);
    }

    #[test]
    fn snapshot_install_truncates_the_wal() {
        let mut d = Disk::new();
        d.append_wal(b"old-records");
        d.install_snapshot(b"state".to_vec());
        assert_eq!(d.snapshot(), b"state");
        assert_eq!(d.wal_len(), 0, "WAL compacted away");
        assert_eq!(d.stats().snapshots_installed, 1);
        assert_eq!(
            d.stats().wal_bytes_written,
            11,
            "historical write count survives truncation"
        );
        d.append_wal(b"new");
        assert_eq!(d.wal(), b"new");
        assert!(!d.is_empty());
    }

    #[test]
    fn fsync_advances_the_durable_watermark() {
        let mut d = Disk::new();
        d.append_wal(b"abc");
        assert_eq!(d.unsynced_bytes(), 3);
        assert!(d.has_unsynced());
        d.fsync();
        assert_eq!(d.unsynced_bytes(), 0);
        assert_eq!(d.stats().fsyncs, 1);
        d.append_wal(b"de");
        assert!(d.has_unsynced());
        // A crash discards exactly the unsynced suffix.
        d.discard_unsynced();
        assert_eq!(d.wal(), b"abc");
        assert!(!d.has_unsynced());
        assert_eq!(
            d.stats().wal_bytes_written,
            5,
            "historical write count survives the discard"
        );
    }

    #[test]
    fn snapshot_install_resets_the_watermark() {
        let mut d = Disk::new();
        d.append_wal(b"tail");
        d.install_snapshot(b"state".to_vec());
        assert!(!d.has_unsynced(), "an installed snapshot is durable");
        d.append_wal(b"x");
        assert_eq!(d.unsynced_bytes(), 1);
    }
}

//! Node-to-data-center mapping.

use mdcc_common::{DcId, NodeId};

/// Which data center each node lives in.
///
/// Node ids are dense and assigned in spawn order by the
/// [`World`](crate::world::World); the topology grows alongside.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    node_dc: Vec<DcId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the next node as living in `dc`, returning its id.
    pub fn add_node(&mut self, dc: DcId) -> NodeId {
        let id = NodeId(self.node_dc.len() as u32);
        self.node_dc.push(dc);
        id
    }

    /// Data center of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was never registered.
    pub fn dc_of(&self, node: NodeId) -> DcId {
        self.node_dc[node.0 as usize]
    }

    /// All nodes in `dc`, in id order.
    pub fn nodes_in(&self, dc: DcId) -> Vec<NodeId> {
        self.node_dc
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == dc)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Total number of registered nodes.
    pub fn len(&self) -> usize {
        self.node_dc.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.node_dc.is_empty()
    }

    /// True when both nodes are in the same data center.
    pub fn colocated(&self, a: NodeId, b: NodeId) -> bool {
        self.dc_of(a) == self.dc_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_dense_ids_and_remembers_dcs() {
        let mut t = Topology::new();
        let a = t.add_node(DcId(0));
        let b = t.add_node(DcId(1));
        let c = t.add_node(DcId(0));
        assert_eq!((a, b, c), (NodeId(0), NodeId(1), NodeId(2)));
        assert_eq!(t.dc_of(b), DcId(1));
        assert_eq!(t.nodes_in(DcId(0)), vec![NodeId(0), NodeId(2)]);
        assert!(t.colocated(a, c));
        assert!(!t.colocated(a, b));
        assert_eq!(t.len(), 3);
    }
}

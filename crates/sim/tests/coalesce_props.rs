//! Property tests of the destination-coalesced envelope transport.
//!
//! Three guarantees the outbox/flush layer must uphold no matter how
//! sends interleave:
//!
//! * **per-(src, dst) FIFO** — on a jitter-free network, a receiver
//!   sees every sender's messages in exactly send order, coalesced or
//!   not, for any flush window;
//! * **payload conservation** — coalescing changes framing only: the
//!   same messages arrive whether the outbox batches them or the
//!   legacy transport ships them one frame each;
//! * **codec agreement** — the bytes the simulator bills for an
//!   envelope equal the framed size of the shared
//!   [`mdcc_common::wire::Envelope`] codec encoding, and that encoding
//!   round-trips.

use mdcc_common::wire::{
    envelope_wire_bytes, frame_payload, from_bytes, to_bytes, Envelope, FRAME_OVERHEAD,
};
use mdcc_common::{DcId, NodeId, SimDuration};
use mdcc_sim::{Ctx, NetworkModel, Process, World, WorldConfig};
use proptest::prelude::*;

/// Sends `(self_tag << 16) | seq` to the sink on a fixed schedule of
/// inter-send gaps (µs); gap 0 batches with the previous send's event.
struct ScheduledSender {
    sink: NodeId,
    tag: u32,
    gaps_us: Vec<u64>,
    next: usize,
}

impl Process<u32> for ScheduledSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.set_timer(SimDuration::ZERO, 0);
    }
    fn on_message(&mut self, _f: NodeId, _m: u32, _ctx: &mut Ctx<'_, u32>) {}
    fn on_timer(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
        // Emit every zero-gap send in this event, then re-arm for the
        // next positive gap.
        loop {
            if self.next >= self.gaps_us.len() {
                return;
            }
            let gap = self.gaps_us[self.next];
            ctx.send(self.sink, (self.tag << 16) | self.next as u32);
            self.next += 1;
            if gap > 0 {
                ctx.set_timer(SimDuration::from_micros(gap), 0);
                return;
            }
        }
    }
}

struct Sink {
    got: Vec<(NodeId, u32)>,
}
impl Process<u32> for Sink {
    fn on_message(&mut self, from: NodeId, m: u32, _ctx: &mut Ctx<'_, u32>) {
        self.got.push((from, m));
    }
}

/// Runs one schedule; returns the sink's receive log.
fn run_schedule(
    schedules: &[Vec<u64>],
    coalesce: bool,
    window_us: u64,
    service_us: u64,
) -> Vec<(NodeId, u32)> {
    let net = NetworkModel::uniform(2, 80.0, 1.0).with_jitter(0.0);
    let mut w = World::new(
        net,
        WorldConfig {
            seed: 7,
            service_time: SimDuration::from_micros(service_us),
            service_ns_per_byte: 10,
            coalesce,
            coalesce_window: SimDuration::from_micros(window_us),
            ..WorldConfig::default()
        },
    );
    let sink = w.spawn(DcId(1), Box::new(Sink { got: Vec::new() }));
    for (i, gaps) in schedules.iter().enumerate() {
        w.spawn(
            DcId(0),
            Box::new(ScheduledSender {
                sink,
                tag: i as u32 + 1,
                gaps_us: gaps.clone(),
                next: 0,
            }),
        );
    }
    w.run_to_quiescence_bounded(1_000_000);
    w.get::<Sink>(sink).unwrap().got.clone()
}

/// Per-sender receive subsequence, in arrival order.
fn per_sender(log: &[(NodeId, u32)], sender: NodeId) -> Vec<u32> {
    log.iter()
        .filter(|(f, _)| *f == sender)
        .map(|(_, m)| *m)
        .collect()
}

/// A payload whose traffic class the test chooses: coalescing is
/// same-class-only, so interleaved classes split into separate
/// envelopes (and may reorder relative to each other, like jittered
/// delivery — FIFO is guaranteed per (src, dst, class)).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Classed(u32, mdcc_sim::TrafficClass);
impl mdcc_sim::NetMessage for Classed {
    fn wire_bytes(&self) -> usize {
        64
    }
    fn traffic_class(&self) -> mdcc_sim::TrafficClass {
        self.1
    }
}

#[test]
fn interleaved_classes_split_envelopes_but_keep_per_class_order() {
    use mdcc_sim::TrafficClass as Tc;
    struct Blast {
        sink: NodeId,
    }
    impl Process<Classed> for Blast {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Classed>) {
            ctx.send(self.sink, Classed(0, Tc::Sync));
            ctx.send(self.sink, Classed(1, Tc::Protocol));
            ctx.send(self.sink, Classed(2, Tc::Sync));
            ctx.send(self.sink, Classed(3, Tc::Protocol));
        }
        fn on_message(&mut self, _f: NodeId, _m: Classed, _ctx: &mut Ctx<'_, Classed>) {}
    }
    struct ClassSink {
        got: Vec<Classed>,
    }
    impl Process<Classed> for ClassSink {
        fn on_message(&mut self, _f: NodeId, m: Classed, _ctx: &mut Ctx<'_, Classed>) {
            self.got.push(m);
        }
    }
    let net = NetworkModel::uniform(2, 80.0, 1.0).with_jitter(0.0);
    let mut w = World::new(
        net,
        WorldConfig {
            seed: 3,
            service_time: SimDuration::ZERO,
            service_ns_per_byte: 0,
            ..WorldConfig::default()
        },
    );
    let sink = w.spawn(DcId(1), Box::new(ClassSink { got: Vec::new() }));
    let _ = w.spawn(DcId(0), Box::new(Blast { sink }));
    w.run_to_quiescence_bounded(1_000);
    let stats = w.stats();
    assert_eq!(stats.sent, 2, "one envelope per class");
    assert_eq!(stats.class(mdcc_sim::TrafficClass::Sync).payloads, 2);
    assert_eq!(stats.class(mdcc_sim::TrafficClass::Protocol).payloads, 2);
    let got = &w.get::<ClassSink>(sink).unwrap().got;
    assert_eq!(got.len(), 4, "nothing lost across class splits");
    let seqs =
        |class: Tc| -> Vec<u32> { got.iter().filter(|m| m.1 == class).map(|m| m.0).collect() };
    assert_eq!(seqs(Tc::Sync), vec![0, 2], "Sync order preserved");
    assert_eq!(seqs(Tc::Protocol), vec![1, 3], "Protocol order preserved");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fifo_order_and_payload_conservation_hold_for_any_window(
        schedules in prop::collection::vec(
            prop::collection::vec(0u64..2_500, 1..24),
            1..4,
        ),
        window_us in 0u64..8_000,
        service_us in 0u64..200,
    ) {
        let coalesced = run_schedule(&schedules, true, window_us, service_us);
        let legacy = run_schedule(&schedules, false, 0, service_us);

        let total: usize = schedules.iter().map(Vec::len).sum();
        prop_assert_eq!(coalesced.len(), total, "coalescing lost or duplicated messages");
        prop_assert_eq!(legacy.len(), total);

        for (i, gaps) in schedules.iter().enumerate() {
            // Senders spawned after the sink: ids 1, 2, ...
            let sender = NodeId(i as u32 + 1);
            let tag = i as u32 + 1;
            let expected: Vec<u32> =
                (0..gaps.len() as u32).map(|s| (tag << 16) | s).collect();
            prop_assert_eq!(
                per_sender(&coalesced, sender),
                expected.clone(),
                "per-(src,dst) FIFO order broke under coalescing"
            );
            prop_assert_eq!(per_sender(&legacy, sender), expected);
        }
    }

    #[test]
    fn billed_envelope_bytes_match_the_codec(
        payload_sizes in prop::collection::vec(1usize..2_000, 2..12),
    ) {
        // Framed single-message sizes, as NetMessage::wire_bytes reports
        // them for real protocol messages.
        let framed: Vec<usize> = payload_sizes.iter().map(|p| p + FRAME_OVERHEAD).collect();
        let env = Envelope {
            class: 0,
            payloads: payload_sizes.iter().map(|&n| vec![0xA5u8; n]).collect(),
        };
        let encoded = frame_payload(&to_bytes(&env));
        prop_assert_eq!(
            envelope_wire_bytes(framed.iter().copied()),
            encoded.len(),
            "the transport's byte accounting must equal the codec's framed size"
        );
    }

    #[test]
    fn envelope_codec_round_trips(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..300),
            0..10,
        ),
        class in 0u8..4,
    ) {
        let env = Envelope { class, payloads };
        let decoded: Envelope = from_bytes(&to_bytes(&env)).expect("round trip");
        prop_assert_eq!(decoded, env);
    }
}

//! Property tests of the simulator's reproducibility guarantee: same
//! seed, same configuration ⇒ byte-identical executions, across random
//! topologies, jitter levels and loss rates.

use mdcc_common::{DcId, NodeId, SimDuration, SimTime};
use mdcc_sim::{Ctx, NetworkModel, Process, World, WorldConfig};
use proptest::prelude::*;

/// A gossiping process: periodically messages a random peer and records
/// everything it receives.
struct Gossip {
    peers: Vec<NodeId>,
    rounds: u32,
    log: Vec<(SimTime, NodeId, u32)>,
}

impl Process<u32> for Gossip {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.set_timer(SimDuration::from_millis(10), 0);
    }
    fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
        self.log.push((ctx.now, from, msg));
    }
    fn on_timer(&mut self, msg: u32, ctx: &mut Ctx<'_, u32>) {
        use rand::Rng;
        if msg >= self.rounds {
            return;
        }
        let peer = self.peers[ctx.rng.gen_range(0..self.peers.len())];
        ctx.send(peer, msg);
        ctx.set_timer(SimDuration::from_millis(10), msg + 1);
    }
}

/// Per-node receive logs plus world counters — the full observable
/// trace of one run.
type Trace = (Vec<Vec<(SimTime, NodeId, u32)>>, mdcc_sim::WorldStats);

#[allow(clippy::too_many_arguments)]
fn run(
    seed: u64,
    dcs: usize,
    nodes_per_dc: usize,
    rtt: f64,
    jitter: f64,
    drop: f64,
    service_us: u64,
    coalesce_window_us: u64,
) -> Trace {
    let net = NetworkModel::uniform(dcs, rtt, 1.0)
        .with_jitter(jitter)
        .with_drop_prob(drop);
    let mut world = World::new(
        net,
        WorldConfig {
            seed,
            service_time: SimDuration::from_micros(service_us),
            coalesce_window: SimDuration::from_micros(coalesce_window_us),
            ..WorldConfig::default()
        },
    );
    let total = dcs * nodes_per_dc;
    let peers: Vec<NodeId> = (0..total as u32).map(NodeId).collect();
    for i in 0..total {
        let g = Gossip {
            peers: peers.clone(),
            rounds: 20,
            log: Vec::new(),
        };
        world.spawn(DcId((i % dcs) as u8), Box::new(g));
    }
    world.run_for(SimDuration::from_secs(2));
    let logs = peers
        .iter()
        .map(|&p| world.get::<Gossip>(p).unwrap().log.clone())
        .collect();
    (logs, world.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_same_execution(
        seed in any::<u64>(),
        dcs in 2usize..5,
        nodes_per_dc in 1usize..3,
        rtt in 10.0f64..300.0,
        jitter in 0.0f64..0.3,
        drop in 0.0f64..0.2,
        service_us in 0u64..500,
        coalesce_window_us in 0u64..5_000,
    ) {
        let a = run(seed, dcs, nodes_per_dc, rtt, jitter, drop, service_us, coalesce_window_us);
        let b = run(seed, dcs, nodes_per_dc, rtt, jitter, drop, service_us, coalesce_window_us);
        prop_assert_eq!(a.1, b.1, "world stats diverged");
        prop_assert_eq!(a.0, b.0, "message logs diverged");
    }

    #[test]
    fn different_seeds_diverge_under_jitter(
        seed in any::<u64>(),
        rtt in 50.0f64..200.0,
    ) {
        // With jitter on, two different seeds should essentially never
        // produce identical delivery timestamps.
        let a = run(seed, 3, 2, rtt, 0.2, 0.0, 50, 0);
        let b = run(seed.wrapping_add(1), 3, 2, rtt, 0.2, 0.0, 50, 0);
        prop_assert_ne!(a.0, b.0);
    }
}
